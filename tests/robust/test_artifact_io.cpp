// The crash-safe artifact container and every artifact routed through it:
// round-trips survive byte-exactly, and each corruption class (missing,
// truncated, bit-flipped, version-skewed, malformed) surfaces as the
// matching typed ArtifactError — never a silently wrong artifact.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/artifact_io.hpp"
#include "core/dataset.hpp"
#include "nn/mlp.hpp"
#include "nn/model_io.hpp"
#include "nn/scaler.hpp"

namespace ppdl {
namespace {

std::string tmp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void spit(const std::string& path, const std::string& bytes) {
  // ppdl-lint: allow(raw-file-write) -- plants deliberately corrupt bytes to exercise the loader's defect taxonomy
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Flips one bit somewhere inside the payload (past the header newline).
void flip_payload_bit(const std::string& path) {
  std::string bytes = slurp(path);
  const std::size_t header_end = bytes.find('\n');
  ASSERT_NE(header_end, std::string::npos);
  ASSERT_LT(header_end + 1, bytes.size());
  bytes[header_end + 1 + (bytes.size() - header_end) / 2] ^= 0x10;
  spit(path, bytes);
}

/// Drops the trailing `n` bytes of the file.
void truncate_file(const std::string& path, std::size_t n) {
  std::string bytes = slurp(path);
  ASSERT_GT(bytes.size(), n);
  spit(path, bytes.substr(0, bytes.size() - n));
}

ArtifactErrorKind load_kind(const std::string& path, const std::string& type,
                            int min_version = 1, int max_version = 1) {
  try {
    read_artifact_file(path, type, min_version, max_version);
  } catch (const ArtifactError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "expected ArtifactError for " << path;
  return ArtifactErrorKind::kMalformed;
}

TEST(ArtifactIo, RoundTripIsByteExact) {
  const std::string path = tmp_path("roundtrip.art");
  const std::string payload("line one\nline two\0with a NUL\n", 29);
  write_artifact_file(path, Artifact{"demo", 3, payload});

  const Artifact back = read_artifact_file(path, "demo", 1, 3);
  EXPECT_EQ(back.type, "demo");
  EXPECT_EQ(back.version, 3);
  EXPECT_EQ(back.payload, payload);
  EXPECT_TRUE(artifact_file_ok(path, "demo"));
}

TEST(ArtifactIo, WriteLeavesNoTempFile) {
  const std::string path = tmp_path("notmp.art");
  write_artifact_file(path, Artifact{"demo", 1, "payload"});
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
}

TEST(ArtifactIo, MissingFileIsTyped) {
  EXPECT_EQ(load_kind(tmp_path("does-not-exist.art"), "demo"),
            ArtifactErrorKind::kMissing);
  EXPECT_FALSE(artifact_file_ok(tmp_path("does-not-exist.art"), "demo"));
}

TEST(ArtifactIo, TruncationIsTyped) {
  const std::string path = tmp_path("trunc.art");
  write_artifact_file(path, Artifact{"demo", 1, "a payload long enough"});
  truncate_file(path, 5);
  EXPECT_EQ(load_kind(path, "demo"), ArtifactErrorKind::kTruncated);
}

TEST(ArtifactIo, BitFlipIsTyped) {
  const std::string path = tmp_path("flip.art");
  write_artifact_file(path, Artifact{"demo", 1, "a payload long enough"});
  flip_payload_bit(path);
  EXPECT_EQ(load_kind(path, "demo"), ArtifactErrorKind::kChecksumMismatch);
}

TEST(ArtifactIo, VersionSkewIsTyped) {
  const std::string path = tmp_path("skew.art");
  write_artifact_file(path, Artifact{"demo", 7, "payload"});
  // Reader only supports versions 1..2: too-new artifact must not parse.
  EXPECT_EQ(load_kind(path, "demo", 1, 2), ArtifactErrorKind::kVersionSkew);
}

TEST(ArtifactIo, WrongTypeAndTrailingBytesAreMalformed) {
  const std::string path = tmp_path("wrongtype.art");
  write_artifact_file(path, Artifact{"demo", 1, "payload"});
  EXPECT_EQ(load_kind(path, "other"), ArtifactErrorKind::kMalformed);

  spit(path, slurp(path) + "trailing");
  EXPECT_EQ(load_kind(path, "demo"), ArtifactErrorKind::kMalformed);
}

TEST(ArtifactIo, WriteToBadDirectoryIsTyped) {
  try {
    write_artifact_file(tmp_path("no-such-dir/x.art"),
                        Artifact{"demo", 1, "p"});
    FAIL() << "expected ArtifactError";
  } catch (const ArtifactError& e) {
    EXPECT_EQ(e.kind(), ArtifactErrorKind::kWriteFailed);
  }
}

TEST(ArtifactIo, ChecksumIsStableFnv1a) {
  // Spot-check against the published FNV-1a 64-bit test vector.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
}

// --- corruption of real artifacts ------------------------------------------

nn::Mlp small_model() {
  Rng rng(7);
  return nn::Mlp(nn::MlpConfig::paper_default(3, 1, 2, 4), rng);
}

TEST(ArtifactIo, CorruptedModelFileFailsTyped) {
  const std::string path = tmp_path("model.art");
  nn::save_model_file(small_model(), path);
  ASSERT_NO_THROW(nn::load_model_file(path));

  flip_payload_bit(path);
  try {
    nn::load_model_file(path);
    FAIL() << "expected a typed error";
  } catch (const ArtifactError& e) {
    EXPECT_EQ(e.kind(), ArtifactErrorKind::kChecksumMismatch);
  }
}

TEST(ArtifactIo, TruncatedModelFileFailsTyped) {
  const std::string path = tmp_path("model-trunc.art");
  nn::save_model_file(small_model(), path);
  truncate_file(path, 40);
  try {
    nn::load_model_file(path);
    FAIL() << "expected a typed error";
  } catch (const ArtifactError& e) {
    EXPECT_EQ(e.kind(), ArtifactErrorKind::kTruncated);
  }
}

TEST(ArtifactIo, ScalerFileRoundTripAndCorruption) {
  nn::Matrix x(4, 2);
  for (Index r = 0; r < 4; ++r) {
    for (Index c = 0; c < 2; ++c) {
      x(r, c) = static_cast<Real>(r * 2 + c) * 0.37 + 1.0;
    }
  }
  nn::StandardScaler scaler;
  scaler.fit(x);

  const std::string path = tmp_path("scaler.art");
  nn::save_scaler_file(scaler, path);
  const nn::StandardScaler back = nn::load_scaler_file(path);
  const nn::Matrix a = scaler.transform(x);
  const nn::Matrix b = back.transform(x);
  for (Index r = 0; r < a.rows(); ++r) {
    for (Index c = 0; c < a.cols(); ++c) {
      EXPECT_EQ(a(r, c), b(r, c));  // hexfloat round-trip: exact
    }
  }

  flip_payload_bit(path);
  EXPECT_THROW(nn::load_scaler_file(path), ArtifactError);
}

TEST(ArtifactIo, DatasetFileRoundTripAndCorruption) {
  core::Dataset d;
  d.layer = 2;
  d.x = nn::Matrix(3, 2);
  d.y = nn::Matrix(3, 1);
  d.branch = {5, 9, 11};
  for (Index r = 0; r < 3; ++r) {
    d.x(r, 0) = static_cast<Real>(r) * 0.5;
    d.x(r, 1) = 1.0 / (static_cast<Real>(r) + 1.0);
    d.y(r, 0) = 1.0 + static_cast<Real>(r);
  }

  const std::string path = tmp_path("dataset.art");
  core::save_dataset_file(d, path);
  const core::Dataset back = core::load_dataset_file(path);
  EXPECT_EQ(back.layer, d.layer);
  EXPECT_EQ(back.branch, d.branch);
  ASSERT_EQ(back.x.rows(), d.x.rows());
  ASSERT_EQ(back.y.rows(), d.y.rows());
  EXPECT_EQ(back.x(2, 1), d.x(2, 1));
  EXPECT_EQ(back.y(2, 0), d.y(2, 0));

  flip_payload_bit(path);
  EXPECT_THROW(core::load_dataset_file(path), ArtifactError);
}

TEST(ArtifactIo, ModelStreamRejectsTruncationWithLineNumber) {
  std::ostringstream out;
  nn::save_model(small_model(), out);
  const std::string text = out.str();
  std::istringstream in(text.substr(0, text.size() / 2));
  try {
    nn::load_model(in);
    FAIL() << "expected ModelIoError";
  } catch (const nn::ModelIoError& e) {
    EXPECT_GT(e.line(), 0);
    EXPECT_NE(std::string(e.what()).find("line"), std::string::npos);
  }
}

// --- hostile headers: the container must reject a lying length field by
// --- comparing it to the bytes present, before any payload allocation.

TEST(ArtifactIo, GiantDeclaredPayloadRejectedWithoutAllocation) {
  const std::string path = tmp_path("giant.art");
  // Claims 100 GB of payload backed by 3 bytes. Must be a fast typed
  // failure (truncated), not a 100 GB resize/bad_alloc.
  spit(path,
       "ppdl-artifact 1 demo 1 107374182400 0000000000000000\nabc");
  EXPECT_EQ(load_kind(path, "demo"), ArtifactErrorKind::kTruncated);
}

TEST(ArtifactIo, NegativePayloadSizeRejected) {
  const std::string path = tmp_path("negsize.art");
  spit(path, "ppdl-artifact 1 demo 1 -1 0000000000000000\nabc");
  EXPECT_THROW(read_artifact_file(path, "demo", 1, 1), ArtifactError);
}

TEST(ArtifactIo, NewlineFreeHeaderRejectedEarly) {
  const std::string path = tmp_path("longheader.art");
  // 1 MiB with no newline: the bounded header read must give up at its
  // 4 KiB cap instead of buffering the whole file hunting for '\n'.
  spit(path, std::string(1 << 20, 'x'));
  EXPECT_EQ(load_kind(path, "demo"), ArtifactErrorKind::kMalformed);
}

TEST(ArtifactIo, StreamReaderMatchesFileReader) {
  // read_artifact_stream is the fuzzing entry point; it must agree with
  // the file path on a good artifact.
  const std::string path = tmp_path("stream.art");
  write_artifact_file(path, Artifact{"demo", 2, "stream payload"});
  std::istringstream in(slurp(path));
  const Artifact a = read_artifact_stream(in, "stream.art", "demo", 1, 2);
  EXPECT_EQ(a.version, 2);
  EXPECT_EQ(a.payload, "stream payload");
}

}  // namespace
}  // namespace ppdl
