// Deadline-bounded graceful degradation: an exhausted wall-clock budget
// stops planner iterations, trainer epochs, the solve ladder, and the whole
// flow cleanly — flagged `timed_out`, best-so-far state intact, no throws.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "analysis/mna.hpp"
#include "common/deadline.hpp"
#include "core/flow.hpp"
#include "linalg/cg.hpp"
#include "nn/trainer.hpp"
#include "planner/conventional_planner.hpp"
#include "robust/solve.hpp"
#include "support/fault_injection.hpp"
#include "support/fixtures.hpp"

namespace ppdl {
namespace {

TEST(Deadline, UnlimitedNeverExpires) {
  const Deadline d = Deadline::unlimited();
  EXPECT_FALSE(d.limited());
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(std::isinf(d.remaining_seconds()));
  EXPECT_FALSE(Deadline{}.expired());  // default-constructed == unlimited
}

TEST(Deadline, ZeroBudgetExpiresImmediately) {
  const Deadline d = Deadline::after_seconds(0.0);
  EXPECT_TRUE(d.limited());
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining_seconds(), 0.0);
}

TEST(Deadline, GenerousBudgetIsNotExpired) {
  const Deadline d = Deadline::after_seconds(3600.0);
  EXPECT_TRUE(d.limited());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_seconds(), 3000.0);
}

TEST(Deadline, TrainerStopsCleanlyWithBestSoFarWeights) {
  nn::Matrix x;
  nn::Matrix y;
  testsupport::linear_training_data(64, x, y);
  Rng rng(3);
  nn::Mlp model(nn::MlpConfig::paper_default(x.cols(), 1, 2, 8), rng);

  nn::TrainOptions opts;
  opts.epochs = 50;
  opts.deadline = Deadline::after_seconds(0.0);
  const nn::TrainHistory history = nn::train(model, x, y, opts);

  EXPECT_TRUE(history.timed_out);
  EXPECT_EQ(history.epochs_run, 0);
  EXPECT_FALSE(history.diverged);
  // The model is still usable: initialization weights predict finite values.
  const nn::Matrix pred = model.predict(x);
  for (const Real v : pred.data()) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(Deadline, TrainerWithRoomRunsToCompletion) {
  nn::Matrix x;
  nn::Matrix y;
  testsupport::linear_training_data(64, x, y);
  Rng rng(3);
  nn::Mlp model(nn::MlpConfig::paper_default(x.cols(), 1, 2, 8), rng);

  nn::TrainOptions opts;
  opts.epochs = 5;
  opts.early_stopping_patience = 0;
  opts.deadline = Deadline::after_seconds(3600.0);
  const nn::TrainHistory history = nn::train(model, x, y, opts);
  EXPECT_FALSE(history.timed_out);
  EXPECT_EQ(history.epochs_run, 5);
}

TEST(Deadline, PlannerStopsBeforeFirstAnalysis) {
  grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  grid::PowerGrid pg = bench.grid;
  const std::vector<Real> widths_before = [&pg] {
    std::vector<Real> w;
    for (Index b = 0; b < pg.branch_count(); ++b) {
      w.push_back(pg.branch(b).width);
    }
    return w;
  }();

  planner::PlannerOptions opts;
  opts.update.ir_limit = bench.spec.ir_limit_mv * 1e-3;
  opts.update.jmax = bench.spec.jmax;
  opts.deadline = Deadline::after_seconds(0.0);
  const planner::PlannerResult result =
      planner::run_conventional_planner(pg, opts);

  EXPECT_TRUE(result.timed_out);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 0);
  // Best-so-far semantics: the grid is exactly as the caller left it.
  for (Index b = 0; b < pg.branch_count(); ++b) {
    EXPECT_EQ(pg.branch(b).width,
              widths_before[static_cast<std::size_t>(b)]);
  }
}

TEST(Deadline, PlannerWithRoomDoesNotFlagTimeout) {
  grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  grid::PowerGrid pg = bench.grid;
  planner::PlannerOptions opts;
  opts.update.ir_limit = bench.spec.ir_limit_mv * 1e-3;
  opts.update.jmax = bench.spec.jmax;
  opts.deadline = Deadline::after_seconds(3600.0);
  const planner::PlannerResult result =
      planner::run_conventional_planner(pg, opts);
  EXPECT_FALSE(result.timed_out);
  EXPECT_TRUE(result.converged);
}

TEST(Deadline, SolveLadderStopsClimbingButRunsRequestedRung) {
  // Starve CG so the requested rung fails; with the budget already spent,
  // the ladder must not escalate — but the requested rung still runs and
  // the best iterate is returned.
  grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  const analysis::MnaSystem mna = analysis::assemble_mna(bench.grid);

  const linalg::ScopedCgIterationClamp clamp(1);
  const robust::RobustSolveResult r =
      robust::robust_solve(mna.g_reduced, mna.rhs);

  robust::RobustSolveOptions timed;
  timed.deadline = Deadline::after_seconds(0.0);
  const robust::RobustSolveResult rt =
      robust::robust_solve(mna.g_reduced, mna.rhs, timed);

  EXPECT_FALSE(rt.report.converged);
  EXPECT_TRUE(rt.report.deadline_expired);
  EXPECT_EQ(rt.report.attempts.size(), 1u);  // requested rung only
  EXPECT_EQ(rt.x.size(), mna.rhs.size());
  // Unbounded ladder recovers from the same starvation by escalating.
  EXPECT_TRUE(r.report.converged);
  EXPECT_GT(r.report.attempts.size(), 1u);
}

TEST(Deadline, FlowDegradesGracefullyEndToEnd) {
  core::FlowOptions o;
  o.benchmark.scale = 0.01;
  o.benchmark.seed = 12345;
  o.model.train.epochs = 10;
  o.deadline_seconds = 1e-9;  // effectively already expired

  const core::FlowResult r = core::run_flow("ibmpg1", o);
  EXPECT_TRUE(r.timed_out);
  EXPECT_EQ(r.timed_out_phase, "golden design");
  EXPECT_FALSE(r.golden_converged);
  // Degraded but complete: the comparison still produced aligned arrays
  // and finite metrics.
  EXPECT_EQ(r.golden_widths.size(), r.predicted_widths.size());
  EXPECT_FALSE(r.golden_widths.empty());
  EXPECT_TRUE(std::isfinite(r.width_mse));
  EXPECT_TRUE(std::isfinite(r.width_r2));
}

}  // namespace
}  // namespace ppdl
