// Structural grid validation: typed defects, repair of the repairable,
// rejection of the fatal — driven through the fault-injection harness.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/ir_solver.hpp"
#include "grid/validate.hpp"
#include "support/fault_injection.hpp"
#include "support/fixtures.hpp"

namespace ppdl::grid {
namespace {

using testsupport::faulty_grid;
using testsupport::make_chain_grid;

bool has_defect(const GridValidationReport& report, GridDefectKind kind) {
  for (const GridDefect& d : report.defects) {
    if (d.kind == kind) {
      return true;
    }
  }
  return false;
}

TEST(GridValidate, HealthyGridIsClean) {
  const PowerGrid pg = make_chain_grid(8, 0.01);
  const GridValidationReport report = validate_grid(pg);
  EXPECT_TRUE(report.ok());
  EXPECT_FALSE(report.blocks_assembly());
  EXPECT_TRUE(report.defects.empty());
}

TEST(GridValidate, FloatingLoadIsFatal) {
  const PowerGrid pg = faulty_grid(GridFault::kFloatingLoad);
  const GridValidationReport report = validate_grid(pg);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.blocks_assembly());
  EXPECT_TRUE(has_defect(report, GridDefectKind::kUnreachableLoad));
  EXPECT_NE(report.summary().find("unreachable-load"), std::string::npos);
}

TEST(GridValidate, AnalysisRejectsFloatingLoadWithTypedError) {
  const PowerGrid pg = faulty_grid(GridFault::kFloatingLoad);
  try {
    analysis::analyze_ir_drop(pg);
    FAIL() << "expected GridDefectError";
  } catch (const GridDefectError& e) {
    EXPECT_FALSE(e.report().ok());
    EXPECT_TRUE(has_defect(e.report(), GridDefectKind::kUnreachableLoad));
  }
}

TEST(GridValidate, DisconnectedIslandIsRepairable) {
  const PowerGrid pg = faulty_grid(GridFault::kDisconnectedIsland);
  const GridValidationReport report = validate_grid(pg);
  EXPECT_TRUE(report.ok());  // no load is stranded, so not fatal
  EXPECT_TRUE(report.blocks_assembly());
  EXPECT_GT(report.repairable_count, 0);
  EXPECT_TRUE(has_defect(report, GridDefectKind::kUnreachableNode));
}

TEST(GridValidate, RepairDropsIslandAndPreservesElectricalIntent) {
  const Index nodes = 8;
  const Real amps = 0.01;
  const PowerGrid healthy = make_chain_grid(nodes, amps);
  const PowerGrid broken = faulty_grid(GridFault::kDisconnectedIsland, nodes,
                                       amps);

  std::vector<std::string> actions;
  const PowerGrid repaired = repaired_copy(broken, &actions);
  EXPECT_FALSE(actions.empty());
  EXPECT_EQ(repaired.node_count(), healthy.node_count());
  EXPECT_FALSE(validate_grid(repaired).blocks_assembly());

  // The repaired grid solves to the same voltages as the healthy original.
  const auto want = analysis::analyze_ir_drop(healthy);
  const auto got = analysis::analyze_ir_drop(repaired);
  ASSERT_TRUE(got.converged);
  EXPECT_NEAR(got.worst_ir_drop, want.worst_ir_drop, 1e-9);
}

TEST(GridValidate, DuplicateBranchIsWarningOnly) {
  const PowerGrid pg = faulty_grid(GridFault::kDuplicateBranch);
  const GridValidationReport report = validate_grid(pg);
  EXPECT_TRUE(report.ok());
  EXPECT_FALSE(report.blocks_assembly());  // parallel resistors still solve
  EXPECT_TRUE(has_defect(report, GridDefectKind::kDuplicateBranch));

  // Analysis accepts the grid; the duplicate halves the local resistance.
  const auto result = analysis::analyze_ir_drop(pg);
  EXPECT_TRUE(result.converged);
}

TEST(GridValidate, RepairMergesDuplicateBranchesInParallel) {
  const PowerGrid pg = faulty_grid(GridFault::kDuplicateBranch);
  const PowerGrid repaired = repaired_copy(pg);
  EXPECT_EQ(repaired.branch_count(), pg.branch_count() - 1);
  EXPECT_FALSE(has_defect(validate_grid(repaired),
                          GridDefectKind::kDuplicateBranch));

  // Parallel merge preserves the solve exactly.
  const auto want = analysis::analyze_ir_drop(pg);
  const auto got = analysis::analyze_ir_drop(repaired);
  EXPECT_NEAR(got.worst_ir_drop, want.worst_ir_drop, 1e-9);
}

TEST(GridValidate, ExtremeConductanceIsStructurallyAcceptable) {
  // A nine-decade conductance contrast is a conditioning problem, not a
  // structural one: validation passes and the ladder owns the recovery.
  const PowerGrid pg = faulty_grid(GridFault::kExtremeConductance);
  EXPECT_FALSE(validate_grid(pg).blocks_assembly());
  const auto result = analysis::analyze_ir_drop(pg);
  EXPECT_TRUE(result.converged);
}

TEST(GridValidate, EmptyGridIsFatal) {
  const PowerGrid pg;
  const GridValidationReport report = validate_grid(pg);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_defect(report, GridDefectKind::kNoNodes));
}

TEST(GridValidate, MissingPadsAreFatal) {
  PowerGrid pg = make_chain_grid(4, 0.01);
  PowerGrid no_pads;
  no_pads.set_name("no-pads");
  no_pads.set_vdd(pg.vdd());
  no_pads.set_die(pg.die());
  no_pads.add_layer(pg.layer(0));
  for (Index i = 0; i < pg.node_count(); ++i) {
    no_pads.add_node(pg.node(i).pos, pg.node(i).layer);
  }
  for (Index b = 0; b < pg.branch_count(); ++b) {
    const Branch& br = pg.branch(b);
    no_pads.add_wire(br.n1, br.n2, br.layer, br.length, br.width);
  }
  no_pads.add_load(pg.node_count() - 1, 0.01);
  const GridValidationReport report = validate_grid(no_pads);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_defect(report, GridDefectKind::kNoPads));
}

TEST(GridValidate, DanglingPadIsAWarningOnly) {
  // A pad bonded to a branchless node is a packaging defect worth flagging,
  // but it must not block assembly: the node is eliminated before MNA.
  const PowerGrid clean = make_chain_grid(6, 0.01);
  PowerGrid pg = clean;
  inject_fault(pg, GridFault::kDanglingPad);
  ASSERT_EQ(pg.node_count(), clean.node_count() + 1);

  const GridValidationReport report = validate_grid(pg);
  EXPECT_TRUE(report.ok());
  EXPECT_FALSE(report.blocks_assembly());
  EXPECT_EQ(report.warning_count, 1);
  EXPECT_TRUE(has_defect(report, GridDefectKind::kDanglingPad));
  EXPECT_NE(report.summary().find("dangling-pad"), std::string::npos);

  // The defect is benign: analysis still runs and matches the clean grid.
  const auto faulty = analysis::analyze_ir_drop(pg);
  const auto baseline = analysis::analyze_ir_drop(clean);
  ASSERT_TRUE(faulty.converged);
  ASSERT_TRUE(baseline.converged);
  EXPECT_DOUBLE_EQ(faulty.worst_ir_drop, baseline.worst_ir_drop);
}

TEST(GridValidate, ZeroConductanceViaClusterIsFatal) {
  // Opening a via cluster (etch failure) leaves infinite-resistance
  // branches; every one must surface as a fatal defect.
  auto bench = testsupport::make_tiny_benchmark();
  const GridValidationReport before = validate_grid(bench.grid);
  ASSERT_TRUE(before.ok());

  inject_fault(bench.grid, GridFault::kZeroConductanceVias);
  const GridValidationReport report = validate_grid(bench.grid);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.blocks_assembly());
  EXPECT_GE(report.fatal_count, 1);
  EXPECT_TRUE(has_defect(report, GridDefectKind::kNonPositiveConductance));
}

TEST(GridValidate, ZeroConductanceViasInjectionIsDeterministic) {
  // Two injections from the same benchmark open exactly the same branches.
  auto a = testsupport::make_tiny_benchmark();
  auto b = testsupport::make_tiny_benchmark();
  inject_fault(a.grid, GridFault::kZeroConductanceVias);
  inject_fault(b.grid, GridFault::kZeroConductanceVias);
  ASSERT_EQ(a.grid.branch_count(), b.grid.branch_count());
  const auto open = [](const Branch& br) {
    return br.kind == BranchKind::kVia && std::isinf(br.via_resistance);
  };
  Index opened = 0;
  for (Index bi = 0; bi < a.grid.branch_count(); ++bi) {
    EXPECT_EQ(open(a.grid.branch(bi)), open(b.grid.branch(bi)));
    if (open(a.grid.branch(bi))) {
      ++opened;
    }
  }
  EXPECT_GE(opened, 1);
}

TEST(GridValidate, AnalysisRejectsOpenViaClusterWithTypedError) {
  auto bench = testsupport::make_tiny_benchmark();
  inject_fault(bench.grid, GridFault::kZeroConductanceVias);
  try {
    analysis::analyze_ir_drop(bench.grid);
    FAIL() << "expected GridDefectError";
  } catch (const GridDefectError& e) {
    EXPECT_TRUE(has_defect(e.report(),
                           GridDefectKind::kNonPositiveConductance));
  }
}

TEST(GridValidate, ValidationCanBeDisabled) {
  // With validation off, the broken grid reaches the solver, which reports
  // a failed (non-converged) solve instead of a typed defect.
  const PowerGrid pg = faulty_grid(GridFault::kFloatingLoad);
  analysis::IrAnalysisOptions opts;
  opts.validate_grid = false;
  const auto result = analysis::analyze_ir_drop(pg, opts);
  EXPECT_FALSE(result.converged);
  EXPECT_FALSE(result.solve_report.converged);
  EXPECT_FALSE(result.solve_report.summary().empty());
}

}  // namespace
}  // namespace ppdl::grid
