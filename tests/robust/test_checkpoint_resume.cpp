// Flow checkpoint/resume: an interrupted flow restarts from its last
// completed phase instead of re-running the golden planner, and a damaged
// checkpoint is discarded loudly (or rethrown under strict_resume) — never
// silently resumed.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/artifact_io.hpp"
#include "core/flow.hpp"
#include "nn/model_io.hpp"

namespace ppdl::core {
namespace {

std::string tmp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + name;
}

FlowOptions fast_flow_options(const std::string& checkpoint) {
  FlowOptions o;
  o.benchmark.scale = 0.015;
  o.benchmark.seed = 77;
  o.model.hidden_layers = 4;
  o.model.hidden_units = 16;
  o.model.train.epochs = 30;
  o.checkpoint_path = checkpoint;
  return o;
}

TEST(CheckpointResume, CheckpointRoundTripsExactly) {
  FlowCheckpoint c;
  c.benchmark_name = "ibmpg1";
  c.completed = FlowPhase::kTraining;
  c.golden_widths = {1.0, 0.0, 2.5, 3.25};
  c.golden_node_ir_drop = {0.001, 0.0025, 0.004};
  c.golden_worst_ir = 0.004;
  c.golden_planner_seconds = 1.5;
  c.golden_iterations = 7;
  c.golden_escalations = 1;
  c.golden_planner_converged = true;
  c.golden_converged = true;
  c.golden_diagnosis = "multi word diagnosis\nwith a second line";
  c.model_trained = true;
  c.model_blob = "fake model bytes\nwith newlines and spaces";
  c.train_seconds = 0.75;
  c.perturbed_load_amps = {0.01, 0.02};
  c.perturbed_pad_voltages = {1.79, 1.81};

  const std::string path = tmp_path("ckpt-roundtrip.art");
  save_flow_checkpoint(c, path);
  const FlowCheckpoint back = load_flow_checkpoint(path);

  EXPECT_EQ(back.benchmark_name, c.benchmark_name);
  EXPECT_EQ(back.completed, c.completed);
  EXPECT_EQ(back.golden_widths, c.golden_widths);
  EXPECT_EQ(back.golden_node_ir_drop, c.golden_node_ir_drop);
  EXPECT_EQ(back.golden_worst_ir, c.golden_worst_ir);
  EXPECT_EQ(back.golden_planner_seconds, c.golden_planner_seconds);
  EXPECT_EQ(back.golden_iterations, c.golden_iterations);
  EXPECT_EQ(back.golden_escalations, c.golden_escalations);
  EXPECT_EQ(back.golden_planner_converged, c.golden_planner_converged);
  EXPECT_EQ(back.golden_converged, c.golden_converged);
  EXPECT_EQ(back.golden_diagnosis, c.golden_diagnosis);
  EXPECT_EQ(back.model_trained, c.model_trained);
  EXPECT_EQ(back.model_blob, c.model_blob);
  EXPECT_EQ(back.train_seconds, c.train_seconds);
  EXPECT_EQ(back.perturbed_load_amps, c.perturbed_load_amps);
  EXPECT_EQ(back.perturbed_pad_voltages, c.perturbed_pad_voltages);
}

TEST(CheckpointResume, LoadRejectsCorruptionTyped) {
  FlowCheckpoint c;
  c.benchmark_name = "ibmpg1";
  c.completed = FlowPhase::kGoldenDesign;
  c.golden_widths = {1.0, 2.0};
  c.golden_node_ir_drop = {0.001};
  const std::string path = tmp_path("ckpt-corrupt.art");
  save_flow_checkpoint(c, path);

  // Flip a payload byte: the container checksum catches it.
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string bytes = buf.str();
    bytes[bytes.size() - 3] ^= 0x04;
    // ppdl-lint: allow(raw-file-write) -- injects checksum corruption the safe writer exists to detect
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  try {
    load_flow_checkpoint(path);
    FAIL() << "expected ArtifactError";
  } catch (const ArtifactError& e) {
    EXPECT_EQ(e.kind(), ArtifactErrorKind::kChecksumMismatch);
  }
}

// The headline durability property: a flow that already completed its
// offline phases resumes from the checkpoint without re-running the golden
// planner or the trainer, and still produces the same comparison.
TEST(CheckpointResume, ResumeSkipsCompletedPhases) {
  const std::string path = tmp_path("ckpt-resume.art");
  std::remove(path.c_str());
  const FlowOptions opts = fast_flow_options(path);

  const FlowResult first = run_flow("ibmpg1", opts);
  ASSERT_TRUE(first.golden_converged);
  EXPECT_EQ(first.resumed_from, FlowPhase::kNone);
  ASSERT_TRUE(artifact_file_ok(path, "flow-ckpt"));
  // The first run spent real wall time on its offline phases.
  EXPECT_GT(first.golden_seconds, 0.0);

  const FlowResult second = run_flow("ibmpg1", opts);
  EXPECT_EQ(second.resumed_from, FlowPhase::kPerturbedSpec);
  EXPECT_TRUE(second.resume_discarded.empty());

  // Restored phases cost (nearly) nothing: no planner iterations, no
  // training epochs — orders of magnitude under the original golden run.
  EXPECT_LT(second.golden_seconds, 0.10);
  EXPECT_LT(second.training_seconds, 0.10);
  EXPECT_LT(second.golden_seconds, first.golden_planner.total_seconds);

  // And the restored state is equivalent: same golden metadata, same
  // perturbed spec, byte-identical model → identical comparison metrics.
  EXPECT_EQ(second.golden_planner.iterations,
            first.golden_planner.iterations);
  EXPECT_EQ(second.golden_converged, first.golden_converged);
  EXPECT_EQ(second.width_mse, first.width_mse);
  EXPECT_EQ(second.width_r2, first.width_r2);
  EXPECT_EQ(second.worst_ir_dl, first.worst_ir_dl);
}

TEST(CheckpointResume, DamagedCheckpointIsDiscardedLoudly) {
  const std::string path = tmp_path("ckpt-damaged.art");
  std::remove(path.c_str());
  const FlowOptions opts = fast_flow_options(path);

  const FlowResult first = run_flow("ibmpg1", opts);
  ASSERT_TRUE(first.golden_converged);

  // Truncate the checkpoint mid-payload, as a crash mid-copy would.
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string bytes = buf.str();
    // ppdl-lint: allow(raw-file-write) -- simulates a crash-truncated checkpoint on purpose
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }

  const FlowResult second = run_flow("ibmpg1", opts);
  EXPECT_EQ(second.resumed_from, FlowPhase::kNone);
  EXPECT_FALSE(second.resume_discarded.empty());
  // The fresh run overwrote the damaged file with a good checkpoint.
  EXPECT_TRUE(artifact_file_ok(path, "flow-ckpt"));

  // strict_resume surfaces the damage instead of recomputing.
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string bytes = buf.str();
    // ppdl-lint: allow(raw-file-write) -- simulates a crash-truncated checkpoint on purpose
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  FlowOptions strict = opts;
  strict.strict_resume = true;
  EXPECT_THROW(run_flow("ibmpg1", strict), ArtifactError);
}

TEST(CheckpointResume, MismatchedBenchmarkIsDiscarded) {
  const std::string path = tmp_path("ckpt-mismatch.art");
  std::remove(path.c_str());

  FlowCheckpoint wrong;
  wrong.benchmark_name = "some-other-design";
  wrong.completed = FlowPhase::kGoldenDesign;
  wrong.golden_widths = {1.0};
  wrong.golden_node_ir_drop = {0.001};
  save_flow_checkpoint(wrong, path);

  const FlowResult r = run_flow("ibmpg1", fast_flow_options(path));
  EXPECT_EQ(r.resumed_from, FlowPhase::kNone);
  EXPECT_NE(r.resume_discarded.find("some-other-design"), std::string::npos);
  EXPECT_TRUE(r.golden_converged);  // fresh run proceeded normally
}

TEST(CheckpointResume, ResumeOffReComputesButRewritesCheckpoint) {
  const std::string path = tmp_path("ckpt-noresume.art");
  std::remove(path.c_str());
  FlowOptions opts = fast_flow_options(path);

  const FlowResult first = run_flow("ibmpg1", opts);
  ASSERT_TRUE(first.golden_converged);

  opts.resume = false;
  const FlowResult second = run_flow("ibmpg1", opts);
  EXPECT_EQ(second.resumed_from, FlowPhase::kNone);
  // Deterministic pipeline: the recomputed run matches the first.
  EXPECT_EQ(second.width_mse, first.width_mse);
}

}  // namespace
}  // namespace ppdl::core
