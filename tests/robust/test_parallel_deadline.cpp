// Deadline expiry under parallelism: an expired budget mid-parallel_for
// stops cleanly — chunks that started always finish, unstarted chunks are
// skipped, the call reports false, timed_out flags propagate, and no
// checkpoint is written for the truncated phase.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "core/flow.hpp"
#include "core/golden.hpp"
#include "support/fixtures.hpp"

namespace ppdl {
namespace {

struct ThreadGuard {
  ~ThreadGuard() { parallel::set_num_threads(0); }
};

TEST(ParallelDeadline, MidLoopExpiryStopsCleanly) {
  ThreadGuard guard;
  parallel::set_num_threads(8);
  const Index chunks = 64;
  std::vector<std::atomic<int>> started(static_cast<std::size_t>(chunks));
  std::vector<std::atomic<int>> finished(static_cast<std::size_t>(chunks));

  // 64 chunks × 5 ms ≫ the 30 ms budget at any core count, so the loop
  // must hit the deadline mid-flight.
  const bool ran = parallel::for_range(
      chunks, 1,
      [&](Index b, Index) {
        started[static_cast<std::size_t>(b)].store(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        finished[static_cast<std::size_t>(b)].store(1);
      },
      Deadline::after_seconds(0.03));

  EXPECT_FALSE(ran) << "expected the deadline to cut the loop short";
  Index ran_count = 0;
  for (Index c = 0; c < chunks; ++c) {
    // Clean early stop: a chunk either never started or ran to completion
    // — never half-executed.
    EXPECT_EQ(started[static_cast<std::size_t>(c)].load(),
              finished[static_cast<std::size_t>(c)].load())
        << "chunk " << c << " was interrupted mid-execution";
    ran_count += finished[static_cast<std::size_t>(c)].load();
  }
  EXPECT_GT(ran_count, 0) << "at least the first claimed chunk runs";
  EXPECT_LT(ran_count, chunks);
}

TEST(ParallelDeadline, GoldenSuiteSkipsUnstartedBenchmarks) {
  ThreadGuard guard;
  parallel::set_num_threads(2);
  core::GoldenDesignOptions opts;
  opts.benchmark.scale = 0.01;
  opts.deadline = Deadline::after_seconds(0.0);

  const core::GoldenSuite suite =
      core::generate_golden_datasets({"ibmpg1", "ibmpg2"}, opts);
  EXPECT_TRUE(suite.timed_out);
  ASSERT_EQ(suite.designs.size(), 2u);
  for (const core::GoldenDesign& d : suite.designs) {
    EXPECT_FALSE(d.completed);
    EXPECT_FALSE(d.converged);
    EXPECT_TRUE(d.datasets.empty());
  }
}

TEST(ParallelDeadline, TimedOutFlowWritesNoCheckpoint) {
  ThreadGuard guard;
  parallel::set_num_threads(2);
  const std::string path = "parallel_deadline_ckpt.artifact";
  std::remove(path.c_str());

  core::FlowOptions o;
  o.benchmark.scale = 0.01;
  o.benchmark.seed = 12345;
  o.model.train.epochs = 5;
  o.checkpoint_path = path;
  o.deadline_seconds = 1e-9;  // expires inside the golden-design phase

  const core::FlowResult r = core::run_flow("ibmpg1", o);
  EXPECT_TRUE(r.timed_out);
  EXPECT_EQ(r.timed_out_phase, "golden design");
  // A timed-out phase is best-so-far output, not durable historical data:
  // nothing may have been checkpointed.
  FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_EQ(f, nullptr) << "checkpoint written despite golden-phase timeout";
  if (f != nullptr) {
    std::fclose(f);
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace ppdl
