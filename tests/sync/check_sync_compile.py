#!/usr/bin/env python3
"""Compile-failure harness for the ppdl::sync thread-safety contracts.

Each fixtures/fail_*.cpp encodes one lock-discipline violation (unguarded
read, missing-REQUIRES call, leaked lock) and MUST fail to compile under
`-Werror=thread-safety`; fixtures/pass_*.cpp use the same vocabulary
correctly and MUST compile cleanly. That proves the annotations are live —
a regression that silently no-ops them (a broken macro gate, a lost
attribute) flips the fail fixtures to "compiles" and trips this harness.

Thread Safety Analysis is clang-only. Without a clang compiler the harness
exits 77 (the ctest SKIP_RETURN_CODE), and the `thread-safety` CI job is
the enforcing run.

Usage:
    check_sync_compile.py [--compiler CXX] [--src DIR] [--fixtures DIR]

Exit codes: 0 all fixtures behave, 1 violations, 77 no clang available.
"""

from __future__ import annotations

import argparse
import glob
import os
import shutil
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
TSA_FLAGS = ["-fsyntax-only", "-std=c++20", "-Wthread-safety",
             "-Werror=thread-safety"]


def is_clang(compiler: str) -> bool:
    try:
        proc = subprocess.run(
            [compiler, "--version"], capture_output=True, text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        return False
    return proc.returncode == 0 and "clang" in proc.stdout.lower()


def pick_compiler(preferred: str | None) -> str | None:
    candidates = []
    if preferred:
        candidates.append(preferred)
    env = os.environ.get("CXX")
    if env:
        candidates.append(env)
    candidates += ["clang++", "clang"]
    for cand in candidates:
        resolved = shutil.which(cand) or (cand if os.path.exists(cand) else None)
        if resolved and is_clang(resolved):
            return resolved
    return None


def compile_fixture(compiler: str, src_include: str, path: str):
    cmd = [compiler, *TSA_FLAGS, "-I", src_include, path]
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=120)
    return proc.returncode, proc.stderr


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--compiler", default=None,
                        help="C++ compiler (must be clang; skips otherwise)")
    parser.add_argument(
        "--src",
        default=os.path.join(os.path.dirname(os.path.dirname(HERE)), "src"),
        help="include root providing common/sync.hpp",
    )
    parser.add_argument("--fixtures",
                        default=os.path.join(HERE, "fixtures"),
                        help="directory of fail_*.cpp / pass_*.cpp fixtures")
    args = parser.parse_args(argv)

    compiler = pick_compiler(args.compiler)
    if compiler is None:
        print("check_sync_compile: no clang compiler available — skipping "
              "(the thread-safety CI job is the enforcing run)")
        return 77

    fixtures = sorted(glob.glob(os.path.join(args.fixtures, "*.cpp")))
    if not fixtures:
        print(f"check_sync_compile: no fixtures in {args.fixtures}",
              file=sys.stderr)
        return 1

    failures = 0
    for path in fixtures:
        name = os.path.basename(path)
        expect_failure = name.startswith("fail_")
        code, stderr = compile_fixture(compiler, args.src, path)
        if expect_failure:
            if code == 0:
                print(f"FAIL {name}: compiled cleanly but encodes a "
                      "lock-discipline violation — the thread-safety "
                      "annotations are not live")
                failures += 1
            elif "thread-safety" not in stderr:
                print(f"FAIL {name}: failed to compile, but not from "
                      f"-Wthread-safety; first stderr lines:\n"
                      + "\n".join(stderr.splitlines()[:5]))
                failures += 1
            else:
                print(f"ok   {name}: rejected by thread-safety analysis")
        else:
            if code != 0:
                print(f"FAIL {name}: expected clean compile; stderr:\n"
                      + "\n".join(stderr.splitlines()[:10]))
                failures += 1
            else:
                print(f"ok   {name}: clean")
    if failures:
        print(f"check_sync_compile: {failures} fixture(s) misbehaved")
        return 1
    print(f"check_sync_compile: {len(fixtures)} fixtures behaved "
          f"({compiler})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
