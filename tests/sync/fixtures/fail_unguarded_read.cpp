// MUST NOT COMPILE under -Werror=thread-safety: value_ is guarded by
// mutex_, and read() touches it without holding the lock.
#include "common/sync.hpp"

namespace {

class Counter {
 public:
  void add(int d) {
    ppdl::sync::MutexLock lock(mutex_);
    value_ += d;
  }
  int read() const {
    return value_;  // BAD: guarded read, no lock held
  }

 private:
  mutable ppdl::sync::Mutex mutex_;
  int value_ PPDL_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.add(1);
  return c.read();
}
