// MUST COMPILE CLEANLY under -Werror=thread-safety: the full annotated
// vocabulary used correctly — scoped locks, a REQUIRES helper called
// under the lock, a relockable UniqueLock with an explicit predicate
// loop, and an EXCLUDES method.
#include "common/sync.hpp"

namespace {

class Queue {
 public:
  void push(int v) PPDL_EXCLUDES(mutex_) {
    {
      ppdl::sync::MutexLock lock(mutex_);
      value_ = v;
      has_value_ = true;
      bump_version();
    }
    cv_.notify_one();
  }

  int pop() PPDL_EXCLUDES(mutex_) {
    ppdl::sync::UniqueLock lock(mutex_);
    while (!has_value_) {
      cv_.wait(lock);
    }
    has_value_ = false;
    return value_;
  }

 private:
  void bump_version() PPDL_REQUIRES(mutex_) { ++version_; }

  ppdl::sync::Mutex mutex_;
  ppdl::sync::CondVar cv_;
  int value_ PPDL_GUARDED_BY(mutex_) = 0;
  bool has_value_ PPDL_GUARDED_BY(mutex_) = false;
  long version_ PPDL_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Queue q;
  q.push(7);
  return q.pop() == 7 ? 0 : 1;
}
