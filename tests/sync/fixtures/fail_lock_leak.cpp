// MUST NOT COMPILE under -Werror=thread-safety: the mutex is acquired
// manually and never released, so it is still held when the function
// returns.
#include "common/sync.hpp"

namespace {
ppdl::sync::Mutex g_mutex;
}  // namespace

int main() {
  g_mutex.lock();
  return 0;  // BAD: g_mutex still held at end of function
}
