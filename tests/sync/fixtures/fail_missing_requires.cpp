// MUST NOT COMPILE under -Werror=thread-safety: unlocked_total() carries
// PPDL_REQUIRES(mutex_), and main-path code calls it without the lock.
#include "common/sync.hpp"

namespace {

class Ledger {
 public:
  int total() {
    return unlocked_total();  // BAD: REQUIRES(mutex_) but mutex_ not held
  }

 private:
  int unlocked_total() PPDL_REQUIRES(mutex_) { return value_; }

  ppdl::sync::Mutex mutex_;
  int value_ PPDL_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Ledger ledger;
  return ledger.total();
}
