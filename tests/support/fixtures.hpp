// Shared hand-built grids with analytically known solutions, used across
// the analysis / planner / core test suites.
#pragma once

#include "core/benchmarks.hpp"
#include "grid/generator.hpp"
#include "grid/power_grid.hpp"

namespace ppdl::testsupport {

/// A single-layer resistive chain:
///
///   pad(Vdd) — w — o — w — o — … — o ←(load I at the far end)
///
/// Each wire has length 100 µm, width 1 µm, ρ = 0.02 Ω/sq → R = 2 Ω.
/// Exact drop at node k (counting from the pad): I · k · R.
inline grid::PowerGrid make_chain_grid(Index nodes, Real load_amps,
                                       Real vdd = 1.8) {
  grid::PowerGrid pg;
  pg.set_name("chain");
  pg.set_vdd(vdd);
  pg.set_die(grid::Rect{0.0, 0.0, 100.0 * static_cast<Real>(nodes), 10.0});
  const Index layer =
      pg.add_layer(grid::Layer{"M1", true, 0.02, 1.0});
  for (Index i = 0; i < nodes; ++i) {
    pg.add_node(grid::Point{100.0 * static_cast<Real>(i), 5.0}, layer);
  }
  for (Index i = 0; i + 1 < nodes; ++i) {
    pg.add_wire(i, i + 1, layer, 100.0, 1.0);
  }
  pg.add_pad(0, vdd);
  pg.add_load(nodes - 1, load_amps);
  return pg;
}

/// Resistance of one chain segment in make_chain_grid.
inline Real chain_segment_resistance() { return 0.02 * 100.0 / 1.0; }

/// A tiny generated benchmark for integration-style tests: a few hundred
/// nodes, calibrated, deterministic.
inline grid::GeneratedBenchmark make_tiny_benchmark(
    Real violation_factor = 2.5) {
  core::BenchmarkOptions opts;
  opts.scale = 0.01;
  opts.seed = 12345;
  opts.initial_violation_factor = violation_factor;
  return core::make_benchmark("ibmpg1", opts);
}

}  // namespace ppdl::testsupport
