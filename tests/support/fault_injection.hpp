// Deterministic fault-injection harness for the robustness suite.
//
// Each helper manufactures exactly one failure class and nothing else, so a
// test exercises one recovery path at a time:
//   * faulty_grid()            — structural grid defects (grid::inject_fault)
//   * linalg::ScopedCgIterationClamp — non-convergent CG (budget starvation)
//   * diverging_train_options() / linear_training_data() — NaN/Inf training
//     loss via an exploding learning rate on well-posed data.
// Everything here is seed- or construction-deterministic: the same test run
// always sees the same fault.
#pragma once

#include "grid/perturb.hpp"
#include "grid/power_grid.hpp"
#include "linalg/cg.hpp"
#include "nn/trainer.hpp"
#include "support/fixtures.hpp"

namespace ppdl::testsupport {

/// A chain grid with one injected fault. The healthy baseline is
/// make_chain_grid(nodes, load_amps) — compare against it to show the
/// repair/recovery preserved the rest of the grid.
inline grid::PowerGrid faulty_grid(grid::GridFault fault, Index nodes = 8,
                                   Real load_amps = 0.01) {
  grid::PowerGrid pg = make_chain_grid(nodes, load_amps);
  grid::inject_fault(pg, fault);
  return pg;
}

/// Rows of y = 2x − 1 on [0, 1]: a trivially learnable regression target.
/// Well-posed on purpose — divergence in the recovery tests must come from
/// the optimizer configuration, not from the data.
inline void linear_training_data(Index rows, nn::Matrix& x, nn::Matrix& y) {
  x = nn::Matrix(rows, 1);
  y = nn::Matrix(rows, 1);
  for (Index r = 0; r < rows; ++r) {
    const Real t = static_cast<Real>(r) / static_cast<Real>(rows - 1);
    x(r, 0) = t;
    y(r, 0) = 2.0 * t - 1.0;
  }
}

/// Training options whose learning rate overshoots to Inf/NaN within the
/// first epochs on linear_training_data(), with enough recovery budget and
/// a hard backoff so the guarded loop can land on a stable rate.
inline nn::TrainOptions diverging_train_options() {
  nn::TrainOptions o;
  o.epochs = 30;
  o.batch_size = 8;
  o.optimizer = nn::OptimizerKind::kSgd;
  o.learning_rate = 1e12;  // guarantees overflow on the first steps
  o.validation_fraction = 0.25;
  o.early_stopping_patience = 0;
  o.lr_backoff_factor = 1e-4;  // two backoffs reach a stable 1e4 -> 1e-4
  o.max_recoveries = 6;
  return o;
}

}  // namespace ppdl::testsupport
