#include <gtest/gtest.h>

#include "planner/conventional_planner.hpp"
#include "support/fixtures.hpp"

namespace ppdl::planner {
namespace {

TEST(Planner, ConvergesOnTinyBenchmark) {
  grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  PlannerOptions opts;
  opts.update.ir_limit = bench.spec.ir_limit_mv * 1e-3;
  opts.update.jmax = bench.spec.jmax;
  const PlannerResult result = run_conventional_planner(bench.grid, opts);
  ASSERT_TRUE(result.converged);
  EXPECT_LE(result.final_analysis.worst_ir_drop, opts.update.ir_limit + 1e-9);
  EXPECT_LE(result.final_analysis.worst_density, opts.update.jmax + 1e-9);
  EXPECT_GT(result.iterations, 1);
}

TEST(Planner, AlreadyHealthyGridConvergesInOneIteration) {
  grid::PowerGrid pg = testsupport::make_chain_grid(4, 0.0001);
  PlannerOptions opts;
  opts.update.ir_limit = 0.5;
  const PlannerResult result = run_conventional_planner(pg, opts);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.iterations, 1);
  EXPECT_EQ(result.trace.size(), 1u);
  EXPECT_EQ(result.trace[0].wires_widened, 0);
}

TEST(Planner, TraceWorstDropIsNonIncreasing) {
  grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  PlannerOptions opts;
  opts.update.ir_limit = bench.spec.ir_limit_mv * 1e-3;
  opts.update.jmax = bench.spec.jmax;
  const PlannerResult result = run_conventional_planner(bench.grid, opts);
  // Widening can locally reroute current, so allow a small non-monotone
  // wiggle; the overall trend must still be downward. Only the sizing phase
  // counts — once the margin is met, the polish pass deliberately relaxes
  // the drop back up toward the limit.
  for (std::size_t i = 1; i < result.trace.size(); ++i) {
    if (result.trace[i - 1].worst_ir_drop <= opts.update.ir_limit) {
      break;
    }
    EXPECT_LE(result.trace[i].worst_ir_drop,
              result.trace[i - 1].worst_ir_drop * 1.05);
  }
  EXPECT_LT(result.final_analysis.worst_ir_drop,
            result.trace.front().worst_ir_drop);
}

TEST(Planner, ImpossibleMarginReportsStuckNotConverged) {
  grid::PowerGrid pg = testsupport::make_chain_grid(6, 1.0);
  PlannerOptions opts;
  opts.update.ir_limit = 1e-9;  // unattainable
  opts.max_iterations = 10;
  const PlannerResult result = run_conventional_planner(pg, opts);
  EXPECT_FALSE(result.converged);
  EXPECT_GT(result.final_analysis.worst_ir_drop, opts.update.ir_limit);
}

TEST(Planner, IterationCapRespected) {
  grid::GeneratedBenchmark bench =
      testsupport::make_tiny_benchmark(/*violation_factor=*/8.0);
  PlannerOptions opts;
  opts.update.ir_limit = bench.spec.ir_limit_mv * 1e-3;
  opts.update.jmax = bench.spec.jmax;
  opts.max_iterations = 2;
  const PlannerResult result = run_conventional_planner(bench.grid, opts);
  EXPECT_LE(result.iterations, 2);
}

TEST(Planner, AccountsAnalysisTime) {
  grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  PlannerOptions opts;
  opts.update.ir_limit = bench.spec.ir_limit_mv * 1e-3;
  opts.update.jmax = bench.spec.jmax;
  const PlannerResult result = run_conventional_planner(bench.grid, opts);
  EXPECT_GT(result.analysis_seconds, 0.0);
  EXPECT_GE(result.total_seconds, result.analysis_seconds * 0.5);
}

TEST(Planner, WarmStartOffStillConverges) {
  grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  PlannerOptions opts;
  opts.update.ir_limit = bench.spec.ir_limit_mv * 1e-3;
  opts.update.jmax = bench.spec.jmax;
  opts.warm_start = false;
  const PlannerResult result = run_conventional_planner(bench.grid, opts);
  EXPECT_TRUE(result.converged);
}

TEST(Planner, GoldenWidthsVaryAcrossTheGrid) {
  // The converged design must not be a uniform blanket: widths should track
  // local current, which is what makes them learnable.
  grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  PlannerOptions opts;
  opts.update.ir_limit = bench.spec.ir_limit_mv * 1e-3;
  opts.update.jmax = bench.spec.jmax;
  run_conventional_planner(bench.grid, opts);
  // At least one layer must show a clear width spread (the planner sizes
  // where current concentrates; which layer that is depends on scale).
  Real best_spread = 0.0;
  for (Index layer = 0; layer < bench.grid.layer_count(); ++layer) {
    Real min_w = 1e18;
    Real max_w = 0.0;
    for (Index b = 0; b < bench.grid.branch_count(); ++b) {
      if (bench.grid.branch(b).kind == grid::BranchKind::kWire &&
          bench.grid.branch(b).layer == layer) {
        min_w = std::min(min_w, bench.grid.branch(b).width);
        max_w = std::max(max_w, bench.grid.branch(b).width);
      }
    }
    if (max_w > 0.0) {
      best_spread = std::max(best_spread, max_w / min_w);
    }
  }
  EXPECT_GT(best_spread, 1.2);
}

TEST(Planner, PolishLandsNearTheMargin) {
  // With polish enabled (default), the converged design should sit close to
  // the IR limit rather than arbitrarily below it — the width-relaxation
  // pass reclaims the loop's overshoot.
  grid::GeneratedBenchmark bench =
      testsupport::make_tiny_benchmark(/*violation_factor=*/4.0);
  PlannerOptions opts;
  opts.update.ir_limit = bench.spec.ir_limit_mv * 1e-3;
  opts.update.jmax = bench.spec.jmax;
  const PlannerResult result = run_conventional_planner(bench.grid, opts);
  ASSERT_TRUE(result.converged);
  EXPECT_LE(result.final_analysis.worst_ir_drop, opts.update.ir_limit + 1e-9);
  EXPECT_GE(result.final_analysis.worst_ir_drop, 0.80 * opts.update.ir_limit);
}

TEST(Planner, PolishSavesMetalVersusUnpolished) {
  const auto metal = [](const grid::PowerGrid& pg) {
    Real area = 0.0;
    for (Index b = 0; b < pg.branch_count(); ++b) {
      if (pg.branch(b).kind == grid::BranchKind::kWire) {
        area += pg.branch(b).length * pg.branch(b).width;
      }
    }
    return area;
  };
  grid::GeneratedBenchmark polished =
      testsupport::make_tiny_benchmark(/*violation_factor=*/4.0);
  grid::GeneratedBenchmark raw =
      testsupport::make_tiny_benchmark(/*violation_factor=*/4.0);
  PlannerOptions opts;
  opts.update.ir_limit = polished.spec.ir_limit_mv * 1e-3;
  opts.update.jmax = polished.spec.jmax;
  run_conventional_planner(polished.grid, opts);
  PlannerOptions no_polish = opts;
  no_polish.polish = false;
  run_conventional_planner(raw.grid, no_polish);
  EXPECT_LE(metal(polished.grid), metal(raw.grid) * 1.0 + 1e-9);
}

TEST(Planner, RejectsZeroIterationBudget) {
  grid::PowerGrid pg = testsupport::make_chain_grid(3, 0.01);
  PlannerOptions opts;
  opts.max_iterations = 0;
  EXPECT_THROW(run_conventional_planner(pg, opts), ContractViolation);
}

}  // namespace
}  // namespace ppdl::planner
