#include <gtest/gtest.h>

#include "planner/conventional_planner.hpp"
#include "planner/sign_off.hpp"
#include "support/fixtures.hpp"

namespace ppdl::planner {
namespace {

TEST(SignOff, HealthyChainSignsOff) {
  const grid::PowerGrid pg = testsupport::make_chain_grid(4, 0.001);
  SignOffOptions opts;
  opts.ir_limit = 0.1;
  opts.jmax = 1.0;
  const SignOffReport report = run_sign_off(pg, opts);
  EXPECT_TRUE(report.ir_ok);
  EXPECT_TRUE(report.em_ok);
  EXPECT_TRUE(report.drc_ok);
  EXPECT_TRUE(report.signed_off);
}

TEST(SignOff, IrViolationRejects) {
  const grid::PowerGrid pg = testsupport::make_chain_grid(6, 0.05);
  SignOffOptions opts;
  opts.ir_limit = 0.01;
  const SignOffReport report = run_sign_off(pg, opts);
  EXPECT_FALSE(report.ir_ok);
  EXPECT_FALSE(report.signed_off);
  EXPECT_GT(report.worst_ir_drop, opts.ir_limit);
}

TEST(SignOff, EmViolationRejectsAndCounts) {
  const grid::PowerGrid pg = testsupport::make_chain_grid(4, 0.5);
  SignOffOptions opts;
  opts.ir_limit = 10.0;  // IR fine
  opts.jmax = 0.1;       // EM violated everywhere (density 0.5)
  const SignOffReport report = run_sign_off(pg, opts);
  EXPECT_FALSE(report.em_ok);
  EXPECT_EQ(report.em_violation_count, pg.wire_count());
  EXPECT_FALSE(report.signed_off);
}

TEST(SignOff, DrcViolationRejects) {
  grid::PowerGrid pg = testsupport::make_chain_grid(4, 0.001);
  pg.set_wire_width(0, 0.01);  // below minimum width
  SignOffOptions opts;
  opts.ir_limit = 1.0;
  const SignOffReport report = run_sign_off(pg, opts);
  EXPECT_FALSE(report.drc_ok);
  EXPECT_GE(report.drc_violation_count, 1);
  EXPECT_FALSE(report.signed_off);
}

TEST(SignOff, PlannerOutputSignsOff) {
  grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  PlannerOptions popts;
  popts.update.ir_limit = bench.spec.ir_limit_mv * 1e-3;
  popts.update.jmax = bench.spec.jmax;
  const PlannerResult planned = run_conventional_planner(bench.grid, popts);
  ASSERT_TRUE(planned.converged);

  SignOffOptions sopts;
  sopts.ir_limit = popts.update.ir_limit;
  sopts.jmax = popts.update.jmax;
  const SignOffReport report = run_sign_off(bench.grid, sopts);
  EXPECT_TRUE(report.signed_off) << report.render();
}

TEST(SignOff, RenderMentionsVerdict) {
  const grid::PowerGrid pg = testsupport::make_chain_grid(4, 0.001);
  SignOffOptions opts;
  opts.ir_limit = 0.1;
  const SignOffReport report = run_sign_off(pg, opts);
  const std::string text = report.render();
  EXPECT_NE(text.find("SIGNED OFF"), std::string::npos);
  EXPECT_NE(text.find("worst IR drop"), std::string::npos);
  EXPECT_NE(text.find("MTTF"), std::string::npos);
}

TEST(SignOff, ReportsFiniteMttf) {
  const grid::PowerGrid pg = testsupport::make_chain_grid(4, 0.01);
  const SignOffReport report = run_sign_off(pg);
  EXPECT_GT(report.min_mttf_hours, 0.0);
}

}  // namespace
}  // namespace ppdl::planner
