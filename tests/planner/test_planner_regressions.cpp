// Regression suite for planner / solver result-reporting bugs and the
// incremental re-solve engine's equivalence contracts:
//   * rejected polish attempts never poison the converged report or the
//     warm-start voltages (and restore the widths bit-identically);
//   * a converged run can never report solver_failed;
//   * the incremental context matches the full path — bitwise in
//     replicate-full mode, within solver tolerance in the default mode —
//     at 1, 2, and 8 threads;
//   * update_worst_region survives degenerate inputs;
//   * the direct (Cholesky) solver honors an expired deadline;
//   * planner.resolve.* strategy counters tally as designed.
#include <gtest/gtest.h>

#include <vector>

#include "analysis/incremental_solver.hpp"
#include "analysis/ir_solver.hpp"
#include "common/parallel.hpp"
#include "linalg/cg.hpp"
#include "planner/conventional_planner.hpp"
#include "planner/width_optimizer.hpp"
#include "support/fixtures.hpp"

namespace ppdl::planner {
namespace {

std::vector<Real> wire_widths(const grid::PowerGrid& pg) {
  std::vector<Real> w;
  w.reserve(static_cast<std::size_t>(pg.branch_count()));
  for (Index b = 0; b < pg.branch_count(); ++b) {
    w.push_back(pg.branch(b).width);
  }
  return w;
}

PlannerOptions tiny_options(const grid::GeneratedBenchmark& bench) {
  PlannerOptions opts;
  opts.update.ir_limit = bench.spec.ir_limit_mv * 1e-3;
  opts.update.jmax = bench.spec.jmax;
  return opts;
}

// Satellite 1 + 2: a polish pass whose every relaxation attempt fails must
// leave the converged report, the diagnosis, the warm-start voltages, and
// the widths exactly as it found them.
TEST(PlannerRegression, RejectedPolishAttemptsDoNotPoisonReport) {
  grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  PlannerOptions opts = tiny_options(bench);
  opts.polish = false;       // converge first; polish is driven by hand below
  opts.incremental = false;  // classic path: the regression predates the ctx
  PlannerResult result = run_conventional_planner(bench.grid, opts);
  ASSERT_TRUE(result.converged);
  ASSERT_FALSE(result.solver_failed);

  const std::vector<Real> widths_before = wire_widths(bench.grid);
  analysis::IrAnalysisOptions solver = opts.solver;
  solver.initial_voltages = result.final_analysis.node_voltage;
  const std::vector<Real> warm_before = solver.initial_voltages;
  const std::string diagnosis_before = result.solver_diagnosis;
  const bool converged_before = result.converged;

  // Raise the limit so there is headroom to relax into, then starve CG with
  // escalation off: every relaxation verify fails and must be rejected.
  PlannerOptions polish_opts = opts;
  polish_opts.update.ir_limit = result.final_analysis.worst_ir_drop * 2.0;
  analysis::IrAnalysisOptions failing_solver = solver;
  failing_solver.escalate_on_failure = false;
  const linalg::ScopedCgIterationClamp clamp(1);
  detail::polish_widths(bench.grid, polish_opts, failing_solver,
                        /*resolve=*/nullptr, result);

  // The report is untouched by the rejected attempts...
  EXPECT_EQ(result.converged, converged_before);
  EXPECT_FALSE(result.solver_failed);
  EXPECT_EQ(result.solver_diagnosis, diagnosis_before);
  // ...the warm start still belongs to the accepted state...
  EXPECT_EQ(failing_solver.initial_voltages, warm_before);
  // ...and the widths are restored bit-identically.
  EXPECT_EQ(wire_widths(bench.grid), widths_before);
}

// The planner-wide invariant the bug violated: converged ⇒ ¬solver_failed,
// even when every CG solve needs the ladder (polish verifies included).
TEST(PlannerRegression, ConvergedRunNeverReportsSolverFailed) {
  for (const bool incremental : {false, true}) {
    grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
    PlannerOptions opts = tiny_options(bench);
    opts.incremental = incremental;
    const linalg::ScopedCgIterationClamp clamp(1);
    const PlannerResult result = run_conventional_planner(bench.grid, opts);
    ASSERT_TRUE(result.converged) << "incremental=" << incremental;
    EXPECT_FALSE(result.solver_failed) << "incremental=" << incremental;
    EXPECT_GT(result.solver_escalations, 0) << "incremental=" << incremental;
  }
}

// Tentpole equivalence, strong form: with the low-rank and frozen-
// preconditioner shortcuts disabled the incremental context replays the
// full path bit-for-bit — identical width trajectory, identical final
// analysis — at every thread count.
TEST(PlannerRegression, ReplicateFullModeIsBitIdentical) {
  std::vector<Real> reference_widths;
  for (const Index threads : {Index{1}, Index{2}, Index{8}}) {
    parallel::set_num_threads(threads);

    grid::GeneratedBenchmark full_bench = testsupport::make_tiny_benchmark();
    PlannerOptions full_opts = tiny_options(full_bench);
    full_opts.incremental = false;
    const PlannerResult full =
        run_conventional_planner(full_bench.grid, full_opts);
    ASSERT_TRUE(full.converged) << "threads=" << threads;

    grid::GeneratedBenchmark inc_bench = testsupport::make_tiny_benchmark();
    PlannerOptions inc_opts = tiny_options(inc_bench);
    inc_opts.incremental = true;
    inc_opts.resolve.allow_low_rank = false;
    inc_opts.resolve.frozen_preconditioner = false;
    const PlannerResult inc =
        run_conventional_planner(inc_bench.grid, inc_opts);
    ASSERT_TRUE(inc.converged) << "threads=" << threads;

    EXPECT_EQ(wire_widths(inc_bench.grid), wire_widths(full_bench.grid))
        << "threads=" << threads;
    EXPECT_EQ(inc.final_analysis.node_voltage,
              full.final_analysis.node_voltage)
        << "threads=" << threads;
    EXPECT_EQ(inc.iterations, full.iterations) << "threads=" << threads;

    // And the trajectory itself is thread-count independent.
    if (reference_widths.empty()) {
      reference_widths = wire_widths(full_bench.grid);
    } else {
      EXPECT_EQ(wire_widths(full_bench.grid), reference_widths)
          << "threads=" << threads;
    }
  }
  parallel::set_num_threads(0);
}

// Tentpole equivalence, default mode: the shortcut-enabled context must
// still land a verified design meeting the same margins, with the final
// analysis agreeing with the full path within solver tolerance.
TEST(PlannerRegression, DefaultIncrementalMatchesFullWithinTolerance) {
  grid::GeneratedBenchmark full_bench = testsupport::make_tiny_benchmark();
  PlannerOptions full_opts = tiny_options(full_bench);
  full_opts.incremental = false;
  const PlannerResult full =
      run_conventional_planner(full_bench.grid, full_opts);
  ASSERT_TRUE(full.converged);

  grid::GeneratedBenchmark inc_bench = testsupport::make_tiny_benchmark();
  PlannerOptions inc_opts = tiny_options(inc_bench);  // incremental default on
  const PlannerResult inc = run_conventional_planner(inc_bench.grid, inc_opts);
  ASSERT_TRUE(inc.converged);

  // Both meet the margins, and the final verify ran the full path (its
  // worst drop is the authoritative one), so the two designs sit at the
  // same operating point up to solver tolerance.
  EXPECT_LE(inc.final_analysis.worst_ir_drop,
            inc_opts.update.ir_limit + 1e-12);
  EXPECT_LE(inc.final_analysis.worst_density, inc_opts.update.jmax + 1e-12);
  EXPECT_NEAR(inc.final_analysis.worst_ir_drop,
              full.final_analysis.worst_ir_drop,
              0.05 * full.final_analysis.worst_ir_drop);
}

// The incremental run's final_analysis is certified by a fresh full-path
// solve at the final widths: re-running analyze_ir_drop cold reproduces it
// within tolerance.
TEST(PlannerRegression, FinalAnalysisIsFullPathCertified) {
  grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  PlannerOptions opts = tiny_options(bench);
  const PlannerResult result = run_conventional_planner(bench.grid, opts);
  ASSERT_TRUE(result.converged);

  const analysis::IrAnalysisResult cold =
      analysis::analyze_ir_drop(bench.grid, opts.solver);
  ASSERT_TRUE(cold.converged);
  EXPECT_NEAR(cold.worst_ir_drop, result.final_analysis.worst_ir_drop,
              1e-6 * result.final_analysis.worst_ir_drop + 1e-12);
}

// Satellite 4: update_worst_region on degenerate inputs — no node drops at
// all, and worst_fraction outside (0, 1] — returns cleanly instead of
// underflowing size_t arithmetic.
TEST(PlannerRegression, WorstRegionSurvivesDegenerateInputs) {
  // Empty grid, empty drop vector, but a violating worst drop on record.
  grid::PowerGrid empty;
  analysis::IrAnalysisResult fake;
  fake.worst_ir_drop = 1.0;
  WidthUpdateOptions wopts;
  wopts.strategy = WidthUpdateStrategy::kWorstRegion;
  wopts.ir_limit = 0.1;
  wopts.jmax = 1.0;
  WidthUpdateState state;
  EXPECT_EQ(update_widths(empty, fake, wopts, state), 0);

  // Out-of-range worst_fraction on a real violating grid: clamped, not UB.
  for (const Real fraction : {-0.5, 0.0, 3.0}) {
    grid::PowerGrid pg = testsupport::make_chain_grid(8, 0.05);
    const analysis::IrAnalysisResult analysis =
        analysis::analyze_ir_drop(pg);
    ASSERT_TRUE(analysis.converged);
    WidthUpdateOptions opts;
    opts.strategy = WidthUpdateStrategy::kWorstRegion;
    opts.ir_limit = analysis.worst_ir_drop * 0.5;  // force a violation
    opts.jmax = 1.0;
    opts.worst_fraction = fraction;
    WidthUpdateState st;
    const Index changed = update_widths(pg, analysis, opts, st);
    EXPECT_GE(changed, 0) << "fraction=" << fraction;
  }
}

// Satellite 3: the direct solver path checks the deadline before paying for
// a factorization.
TEST(PlannerRegression, CholeskyHonorsExpiredDeadline) {
  grid::PowerGrid pg = testsupport::make_chain_grid(16, 0.01);
  analysis::IrAnalysisOptions opts;
  opts.solver = analysis::SolverKind::kCholesky;
  opts.deadline = Deadline::after_seconds(0.0);  // expired on arrival
  const analysis::IrAnalysisResult result = analysis::analyze_ir_drop(pg, opts);
  EXPECT_FALSE(result.converged);
  EXPECT_TRUE(result.solve_report.deadline_expired);
}

// The resident context's strategy accounting: cold build, cache hit on an
// unchanged grid, then an incremental strategy (low-rank or patch) after a
// width change — and the stats mirror exactly the solves that happened.
TEST(PlannerRegression, ResolveStatsTallyStrategies) {
  grid::PowerGrid pg = testsupport::make_chain_grid(12, 0.02);
  analysis::IncrementalIrSolver solver(pg);
  analysis::IrAnalysisOptions opts;

  const analysis::IrAnalysisResult first = solver.analyze(opts);
  ASSERT_TRUE(first.converged);
  EXPECT_EQ(solver.stats().cold_builds, 1u);
  // The cold build's own solve lands in exactly one strategy bucket (rank-0
  // low-rank is a plain direct solve through the fresh factor).
  const std::uint64_t after_cold =
      solver.stats().low_rank_solves + solver.stats().patched_solves;
  EXPECT_EQ(after_cold, 1u);

  const analysis::IrAnalysisResult again = solver.analyze(opts);
  EXPECT_TRUE(again.converged);
  EXPECT_EQ(solver.stats().hits, 1u);
  EXPECT_EQ(again.node_voltage, first.node_voltage);

  pg.set_wire_width(0, pg.branch(0).width * 1.5);
  const analysis::IrAnalysisResult patched = solver.analyze(opts);
  EXPECT_TRUE(patched.converged);
  EXPECT_EQ(solver.stats().low_rank_solves + solver.stats().patched_solves -
                after_cold,
            1u);
  EXPECT_EQ(solver.stats().fallbacks, 0u);

  // The incremental answer agrees with a from-scratch solve.
  const analysis::IrAnalysisResult cold = analysis::analyze_ir_drop(pg, opts);
  ASSERT_EQ(patched.node_voltage.size(), cold.node_voltage.size());
  for (std::size_t i = 0; i < cold.node_voltage.size(); ++i) {
    EXPECT_NEAR(patched.node_voltage[i], cold.node_voltage[i], 1e-7);
  }
}

// The Woodbury shortcut needs the exact factor, so it only arms when the
// preconditioner drop tolerance is zero (the default τ routes every delta
// through the patch path instead). Pin that configuration and check the
// low-rank solve both fires and stays exact against a from-scratch solve.
TEST(PlannerRegression, WoodburyLowRankPathIsExactWhenFactorIsExact) {
  grid::PowerGrid pg = testsupport::make_chain_grid(12, 0.02);
  analysis::IncrementalSolveOptions inc;
  inc.preconditioner_drop_tolerance = 0.0;  // exact factor → Woodbury arms
  analysis::IncrementalIrSolver solver(pg, inc);
  analysis::IrAnalysisOptions opts;

  const analysis::IrAnalysisResult first = solver.analyze(opts);
  ASSERT_TRUE(first.converged);
  const std::uint64_t low_rank_before = solver.stats().low_rank_solves;

  pg.set_wire_width(0, pg.branch(0).width * 1.5);
  const analysis::IrAnalysisResult shifted = solver.analyze(opts);
  ASSERT_TRUE(shifted.converged);
  EXPECT_EQ(solver.stats().low_rank_solves, low_rank_before + 1);
  EXPECT_EQ(solver.stats().fallbacks, 0u);

  const analysis::IrAnalysisResult cold = analysis::analyze_ir_drop(pg, opts);
  ASSERT_EQ(shifted.node_voltage.size(), cold.node_voltage.size());
  for (std::size_t i = 0; i < cold.node_voltage.size(); ++i) {
    EXPECT_NEAR(shifted.node_voltage[i], cold.node_voltage[i], 1e-9);
  }
}

}  // namespace
}  // namespace ppdl::planner
