#include <gtest/gtest.h>

#include "analysis/ir_solver.hpp"
#include "planner/width_optimizer.hpp"
#include "support/fixtures.hpp"

namespace ppdl::planner {
namespace {

WidthUpdateOptions chain_options(Real ir_limit_v) {
  WidthUpdateOptions opts;
  opts.ir_limit = ir_limit_v;
  opts.jmax = 1.0;
  return opts;
}

TEST(WidthOptimizer, NoChangeWhenMarginsHold) {
  grid::PowerGrid pg = testsupport::make_chain_grid(4, 0.001);
  const analysis::IrAnalysisResult res = analysis::analyze_ir_drop(pg);
  // Worst drop = 0.001·3·2 = 6 mV; generous 100 mV limit.
  WidthUpdateOptions opts = chain_options(0.1);
  WidthUpdateState state;
  EXPECT_EQ(update_widths(pg, res, opts, state), 0);
}

TEST(WidthOptimizer, ProportionalWidensUnderViolation) {
  grid::PowerGrid pg = testsupport::make_chain_grid(6, 0.05);
  const analysis::IrAnalysisResult res = analysis::analyze_ir_drop(pg);
  // Worst drop = 0.05·5·2 = 500 mV; limit 50 mV → must widen.
  WidthUpdateOptions opts = chain_options(0.05);
  WidthUpdateState state;
  const Index changed = update_widths(pg, res, opts, state);
  EXPECT_GT(changed, 0);
  for (Index b = 0; b < pg.branch_count(); ++b) {
    EXPECT_GE(pg.branch(b).width, 1.0);
  }
}

TEST(WidthOptimizer, WidthsAreMonotone) {
  grid::PowerGrid pg = testsupport::make_chain_grid(6, 0.05);
  std::vector<Real> before;
  for (Index b = 0; b < pg.branch_count(); ++b) {
    before.push_back(pg.branch(b).width);
  }
  const analysis::IrAnalysisResult res = analysis::analyze_ir_drop(pg);
  WidthUpdateOptions opts = chain_options(0.01);
  WidthUpdateState state;
  update_widths(pg, res, opts, state);
  for (Index b = 0; b < pg.branch_count(); ++b) {
    EXPECT_GE(pg.branch(b).width, before[static_cast<std::size_t>(b)]);
  }
}

TEST(WidthOptimizer, RespectsMaxWidthRule) {
  grid::PowerGrid pg = testsupport::make_chain_grid(6, 10.0);  // huge load
  const analysis::IrAnalysisResult res = analysis::analyze_ir_drop(pg);
  WidthUpdateOptions opts = chain_options(1e-6);  // unreachable limit
  WidthUpdateState state;
  update_widths(pg, res, opts, state);
  const Real max_w = grid::max_width(pg.layer(0), opts.rules);
  for (Index b = 0; b < pg.branch_count(); ++b) {
    EXPECT_LE(pg.branch(b).width, max_w + 1e-9);
  }
}

TEST(WidthOptimizer, EmFloorAppliesEvenWithoutIrViolation) {
  // Density 0.5 A/µm with jmax 0.4 violates EM although IR is fine.
  grid::PowerGrid pg = testsupport::make_chain_grid(3, 0.5);
  const analysis::IrAnalysisResult res = analysis::analyze_ir_drop(pg);
  WidthUpdateOptions opts = chain_options(1e9);
  opts.jmax = 0.4;
  opts.em_safety = 1.0;
  WidthUpdateState state;
  const Index changed = update_widths(pg, res, opts, state);
  EXPECT_GT(changed, 0);
  // Sized to at least |I|/jmax = 1.25 µm.
  for (Index b = 0; b < pg.branch_count(); ++b) {
    EXPECT_GE(pg.branch(b).width, 1.25 - 1e-9);
  }
}

TEST(WidthOptimizer, UniformWidensEverythingEqually) {
  grid::PowerGrid pg = testsupport::make_chain_grid(5, 0.05);
  const analysis::IrAnalysisResult res = analysis::analyze_ir_drop(pg);
  WidthUpdateOptions opts = chain_options(0.01);
  opts.strategy = WidthUpdateStrategy::kUniform;
  WidthUpdateState state;
  update_widths(pg, res, opts, state);
  for (Index b = 0; b < pg.branch_count(); ++b) {
    EXPECT_NEAR(pg.branch(b).width, opts.uniform_factor, 1e-12);
  }
}

TEST(WidthOptimizer, UniformIsNoopWithoutViolation) {
  grid::PowerGrid pg = testsupport::make_chain_grid(4, 0.0001);
  const analysis::IrAnalysisResult res = analysis::analyze_ir_drop(pg);
  WidthUpdateOptions opts = chain_options(0.5);
  opts.strategy = WidthUpdateStrategy::kUniform;
  WidthUpdateState state;
  EXPECT_EQ(update_widths(pg, res, opts, state), 0);
}

TEST(WidthOptimizer, WorstRegionTargetsHotNodes) {
  grid::PowerGrid pg = testsupport::make_chain_grid(10, 0.05);
  const analysis::IrAnalysisResult res = analysis::analyze_ir_drop(pg);
  WidthUpdateOptions opts = chain_options(0.01);
  opts.strategy = WidthUpdateStrategy::kWorstRegion;
  opts.worst_fraction = 0.2;
  WidthUpdateState state;
  const Index changed = update_widths(pg, res, opts, state);
  EXPECT_GT(changed, 0);
  // The far-end (hottest) wire must widen; the first wire (coolest, near the
  // pad) should stay at EM-floor/initial width.
  EXPECT_GT(pg.branch(pg.branch_count() - 1).width, 1.0);
}

TEST(WidthOptimizer, StrategyNames) {
  EXPECT_EQ(to_string(WidthUpdateStrategy::kProportional), "proportional");
  EXPECT_EQ(to_string(WidthUpdateStrategy::kUniform), "uniform");
  EXPECT_EQ(to_string(WidthUpdateStrategy::kWorstRegion), "worst-region");
}

TEST(WidthOptimizer, InvalidOptionsThrow) {
  grid::PowerGrid pg = testsupport::make_chain_grid(3, 0.01);
  const analysis::IrAnalysisResult res = analysis::analyze_ir_drop(pg);
  WidthUpdateState state;
  WidthUpdateOptions bad = chain_options(0.0);
  EXPECT_THROW(update_widths(pg, res, bad, state), ContractViolation);
  WidthUpdateOptions bad2 = chain_options(0.05);
  bad2.jmax = 0.0;
  EXPECT_THROW(update_widths(pg, res, bad2, state), ContractViolation);
}

}  // namespace
}  // namespace ppdl::planner
