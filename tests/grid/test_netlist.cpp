#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "grid/generator.hpp"
#include "grid/netlist.hpp"
#include "support/fixtures.hpp"

namespace ppdl::grid {
namespace {

TEST(SpiceValue, PlainNumbers) {
  EXPECT_DOUBLE_EQ(parse_spice_value("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(parse_spice_value("-2"), -2.0);
  EXPECT_DOUBLE_EQ(parse_spice_value("1e-3"), 1e-3);
}

TEST(SpiceValue, MagnitudeSuffixes) {
  EXPECT_DOUBLE_EQ(parse_spice_value("1k"), 1e3);
  EXPECT_DOUBLE_EQ(parse_spice_value("2meg"), 2e6);
  EXPECT_DOUBLE_EQ(parse_spice_value("3m"), 3e-3);
  EXPECT_DOUBLE_EQ(parse_spice_value("4u"), 4e-6);
  EXPECT_DOUBLE_EQ(parse_spice_value("5n"), 5e-9);
  EXPECT_DOUBLE_EQ(parse_spice_value("6p"), 6e-12);
  EXPECT_DOUBLE_EQ(parse_spice_value("7g"), 7e9);
}

TEST(SpiceValue, MalformedThrows) {
  EXPECT_THROW(parse_spice_value(""), NetlistError);
  EXPECT_THROW(parse_spice_value("abc"), NetlistError);
  EXPECT_THROW(parse_spice_value("1.5z"), NetlistError);
}

TEST(NodeName, FormatUsesLayerAndNanometres) {
  Node n;
  n.layer = 2;
  n.pos = Point{12.5, 0.001};
  EXPECT_EQ(format_node_name(n), "n2_12500_1");
}

TEST(Netlist, WriteContainsAllElements) {
  const PowerGrid pg = testsupport::make_chain_grid(3, 0.01);
  std::ostringstream os;
  write_netlist(pg, os);
  const std::string text = os.str();
  EXPECT_NE(text.find("R1 "), std::string::npos);
  EXPECT_NE(text.find("R2 "), std::string::npos);
  EXPECT_NE(text.find("V1 "), std::string::npos);
  EXPECT_NE(text.find("I1 "), std::string::npos);
  EXPECT_NE(text.find(".end"), std::string::npos);
}

TEST(Netlist, RoundTripPreservesElectricalStructure) {
  const PowerGrid original = testsupport::make_chain_grid(4, 0.02);
  std::stringstream ss;
  write_netlist(original, ss);
  const PowerGrid parsed = parse_netlist(ss, "roundtrip");

  EXPECT_EQ(parsed.node_count(), original.node_count());
  EXPECT_EQ(parsed.branch_count(), original.branch_count());
  EXPECT_EQ(parsed.pad_count(), original.pad_count());
  EXPECT_EQ(parsed.load_count(), original.load_count());
  EXPECT_DOUBLE_EQ(parsed.vdd(), original.vdd());
  // Resistances survive the trip (widths are re-derived from ρ·l/R).
  for (Index i = 0; i < parsed.branch_count(); ++i) {
    EXPECT_NEAR(parsed.branch_resistance(i), original.branch_resistance(i),
                1e-9);
  }
}

TEST(Netlist, RoundTripOnGeneratedGrid) {
  GridSpec spec;
  spec.name = "io";
  spec.m1_stripes = 10;
  spec.m4_stripes = 10;
  spec.m7_stripes = 3;
  spec.total_current = 0.5;
  const GeneratedBenchmark bench = generate_power_grid(spec, 1.0, 9);
  std::stringstream ss;
  write_netlist(bench.grid, ss);
  const PowerGrid parsed = parse_netlist(ss);
  EXPECT_EQ(parsed.node_count(), bench.grid.node_count());
  EXPECT_EQ(parsed.branch_count(), bench.grid.branch_count());
  EXPECT_NEAR(parsed.total_load_current(), bench.grid.total_load_current(),
              1e-9);
  EXPECT_NO_THROW(parsed.validate());
}

TEST(Netlist, ParsesHandwrittenDeck) {
  std::istringstream in(
      "* tiny deck\n"
      "R1 n0_0_0 n0_1000_0 2.0\n"
      "r2 n0_1000_0 n0_2000_0 2.0\n"
      "V1 n0_0_0 0 1.8\n"
      "i1 n0_2000_0 0 10m\n"
      ".op\n"
      ".end\n");
  const PowerGrid pg = parse_netlist(in, "hand");
  EXPECT_EQ(pg.node_count(), 3);
  EXPECT_EQ(pg.branch_count(), 2);
  EXPECT_EQ(pg.pad_count(), 1);
  EXPECT_EQ(pg.load_count(), 1);
  EXPECT_NEAR(pg.loads()[0].amps, 0.01, 1e-12);
  EXPECT_DOUBLE_EQ(pg.vdd(), 1.8);
  // Same-layer spaced resistor becomes a wire with inferred width.
  EXPECT_EQ(pg.branch(0).kind, BranchKind::kWire);
  EXPECT_NO_THROW(pg.validate());
}

TEST(Netlist, ParsedGridGetsDieOutlineFromNodes) {
  const PowerGrid original = testsupport::make_chain_grid(5, 0.01);
  std::stringstream ss;
  write_netlist(original, ss);
  const PowerGrid parsed = parse_netlist(ss);
  // The die must cover every node with a little margin.
  EXPECT_GT(parsed.die().width(), 0.0);
  EXPECT_GT(parsed.die().height(), 0.0);
  for (Index v = 0; v < parsed.node_count(); ++v) {
    EXPECT_TRUE(parsed.die().contains(parsed.node(v).pos));
  }
}

TEST(Netlist, HighPrecisionValuesSurviveRoundTrip) {
  PowerGrid pg = testsupport::make_chain_grid(3, 0.0123456789012345);
  std::stringstream ss;
  write_netlist(pg, ss);
  const PowerGrid parsed = parse_netlist(ss);
  EXPECT_DOUBLE_EQ(parsed.loads()[0].amps, 0.0123456789012345);
}

TEST(Netlist, UnknownNodeNamesFallBackToVia) {
  std::istringstream in(
      "R1 top bottom 1.0\n"
      "V1 top 0 1.0\n"
      ".end\n");
  const PowerGrid pg = parse_netlist(in);
  EXPECT_EQ(pg.branch(0).kind, BranchKind::kVia);
  EXPECT_DOUBLE_EQ(pg.branch_resistance(0), 1.0);
}

TEST(Netlist, MalformedLineThrows) {
  std::istringstream in("R1 n0_0_0 n0_1_0\n");
  EXPECT_THROW(parse_netlist(in), NetlistError);
}

TEST(Netlist, UnsupportedElementThrows) {
  std::istringstream in("C1 n0_0_0 n0_1_0 1p\n");
  EXPECT_THROW(parse_netlist(in), NetlistError);
}

TEST(Netlist, ResistorToGroundRejected) {
  std::istringstream in("R1 n0_0_0 0 1.0\n");
  EXPECT_THROW(parse_netlist(in), NetlistError);
}

// Every parser failure path, table-driven: each diagnostic names the line
// and the element so a broken netlist is fixable from the message alone.
struct BadNetlistCase {
  const char* label;
  const char* netlist;
  const char* wants_in_message;  // substring the diagnostic must carry
};

class NetlistFailure : public ::testing::TestWithParam<BadNetlistCase> {};

TEST_P(NetlistFailure, DiagnosisCarriesLineAndElement) {
  const BadNetlistCase& c = GetParam();
  std::istringstream in(c.netlist);
  try {
    parse_netlist(in);
    FAIL() << c.label << ": expected NetlistError";
  } catch (const NetlistError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line "), std::string::npos) << c.label << ": " << msg;
    EXPECT_NE(msg.find("element "), std::string::npos)
        << c.label << ": " << msg;
    EXPECT_NE(msg.find(c.wants_in_message), std::string::npos)
        << c.label << ": " << msg;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ParserFailurePaths, NetlistFailure,
    ::testing::Values(
        BadNetlistCase{"malformed-value",
                       "* header comment\nR1 n0_0_0 n0_1000_0 abc\n",
                       "malformed value"},
        BadNetlistCase{"unknown-suffix", "R1 n0_0_0 n0_1000_0 1.5z\n",
                       "unknown value suffix"},
        BadNetlistCase{"truncated-line", "R7 n0_0_0 n0_1000_0\n",
                       "element R7"},
        BadNetlistCase{"negative-layer", "R2 n-1_0_0 n0_1000_0 1.0\n",
                       "negative layer"},
        BadNetlistCase{"negative-resistance",
                       "R3 n0_0_0 n0_1000_0 -2.0\n"
                       "V1 n0_0_0 0 1.8\n",
                       "element R3"},
        BadNetlistCase{"zero-resistance",
                       "R4 n0_0_0 n0_1000_0 0\n"
                       "V1 n0_0_0 0 1.8\n",
                       "non-positive resistance"},
        BadNetlistCase{"unsupported-element", "C1 n0_0_0 n0_1000_0 1p\n",
                       "unsupported element"},
        BadNetlistCase{"resistor-to-ground", "R5 n0_0_0 0 1.0\n",
                       "resistor to ground"},
        BadNetlistCase{"vsource-ground-ground", "V2 0 0 1.8\n",
                       "vsource between ground"},
        BadNetlistCase{"isource-ground-ground", "I2 0 0 5m\n",
                       "isource between ground"},
        BadNetlistCase{"nan-value", "I1 n0_0_0 0 nan\n", "non-finite value"},
        BadNetlistCase{"inf-resistance", "R1 n0_0_0 n0_1000_0 inf\n",
                       "non-finite value"},
        BadNetlistCase{"overflowing-value", "R1 n0_0_0 n0_1000_0 1e999\n",
                       "malformed value"},
        BadNetlistCase{"negative-load-current", "I1 n0_0_0 0 -5m\n",
                       "negative load current"},
        BadNetlistCase{"layer-past-cap", "R1 n999_0_0 n0_1000_0 1.0\n",
                       "layer cap"}),
    [](const ::testing::TestParamInfo<BadNetlistCase>& param_info) {
      std::string name = param_info.param.label;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(Netlist, MalformedValueNamesExactLine) {
  std::istringstream in(
      "* comment\n"
      "V1 n0_0_0 0 1.8\n"
      "R1 n0_0_0 n0_1000_0 bogus\n");
  try {
    parse_netlist(in);
    FAIL() << "expected NetlistError";
  } catch (const NetlistError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("element R1"), std::string::npos) << msg;
  }
}

TEST(Netlist, NewlineFreeGigalineRejected) {
  // A single line past the 1 MiB cap (e.g. a newline-free blob fed to the
  // parser) must fail with a typed error naming the line, not buffer the
  // whole stream into one std::string.
  std::string deck = "R1 n0_0_0 n0_1000_0 1.0 ";
  deck.append((1 << 20) + 64, 'x');
  std::istringstream in(deck);
  try {
    parse_netlist(in);
    FAIL() << "expected NetlistError";
  } catch (const NetlistError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("byte cap"), std::string::npos) << msg;
  }
}

TEST(Netlist, NegativeCurrentDiagnosticNamesLine) {
  std::istringstream in(
      "V1 n0_0_0 0 1.8\n"
      "I1 n0_1000_0 0 -10m\n");
  try {
    parse_netlist(in);
    FAIL() << "expected NetlistError";
  } catch (const NetlistError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("negative load current"), std::string::npos) << msg;
  }
}

TEST(Netlist, StopsAtEndDirective) {
  std::istringstream in(
      "V1 n0_0_0 0 1.8\n"
      "R1 n0_0_0 n0_1000_0 1.0\n"
      ".end\n"
      "garbage beyond end\n");
  EXPECT_NO_THROW(parse_netlist(in));
}

}  // namespace
}  // namespace ppdl::grid
