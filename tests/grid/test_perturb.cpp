#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "grid/perturb.hpp"
#include "support/fixtures.hpp"

namespace ppdl::grid {
namespace {

constexpr Real kBudget = 0.07;  // 70 mV IR budget for pad perturbations

TEST(Perturb, CurrentWorkloadsStayWithinGamma) {
  PowerGrid pg = testsupport::make_chain_grid(5, 0.02);
  pg.add_load(1, 0.05);
  pg.add_load(2, 0.01);
  const PowerGrid p = perturbed_copy(pg, PerturbationKind::kCurrentWorkloads,
                                     0.10, 7, kBudget);
  for (Index i = 0; i < pg.load_count(); ++i) {
    const Real ratio = p.loads()[static_cast<std::size_t>(i)].amps /
                       pg.loads()[static_cast<std::size_t>(i)].amps;
    EXPECT_GE(ratio, 0.90);
    EXPECT_LE(ratio, 1.10);
  }
  // Pads untouched by this kind.
  EXPECT_DOUBLE_EQ(p.pads()[0].voltage, pg.pads()[0].voltage);
}

TEST(Perturb, NodeVoltagesStayWithinBudget) {
  PowerGrid pg = testsupport::make_chain_grid(5, 0.02);
  const PowerGrid p = perturbed_copy(pg, PerturbationKind::kNodeVoltages,
                                     0.30, 7, kBudget);
  const Real delta = std::abs(p.pads()[0].voltage - pg.pads()[0].voltage);
  EXPECT_LE(delta, 0.30 * kBudget + 1e-12);
  // Loads untouched by this kind.
  EXPECT_DOUBLE_EQ(p.loads()[0].amps, pg.loads()[0].amps);
}

TEST(Perturb, BothTouchesLoadsAndPads) {
  PowerGrid pg = testsupport::make_chain_grid(5, 0.02);
  const PowerGrid p =
      perturbed_copy(pg, PerturbationKind::kBoth, 0.20, 11, kBudget);
  EXPECT_NE(p.loads()[0].amps, pg.loads()[0].amps);
  EXPECT_NE(p.pads()[0].voltage, pg.pads()[0].voltage);
}

TEST(Perturb, ZeroGammaIsIdentity) {
  PowerGrid pg = testsupport::make_chain_grid(4, 0.02);
  const PowerGrid p =
      perturbed_copy(pg, PerturbationKind::kBoth, 0.0, 3, kBudget);
  EXPECT_DOUBLE_EQ(p.loads()[0].amps, pg.loads()[0].amps);
  EXPECT_DOUBLE_EQ(p.pads()[0].voltage, pg.pads()[0].voltage);
}

TEST(Perturb, DeterministicForSeed) {
  PowerGrid pg = testsupport::make_chain_grid(4, 0.02);
  const PowerGrid a =
      perturbed_copy(pg, PerturbationKind::kBoth, 0.15, 5, kBudget);
  const PowerGrid b =
      perturbed_copy(pg, PerturbationKind::kBoth, 0.15, 5, kBudget);
  EXPECT_DOUBLE_EQ(a.loads()[0].amps, b.loads()[0].amps);
  EXPECT_DOUBLE_EQ(a.pads()[0].voltage, b.pads()[0].voltage);
}

TEST(Perturb, SeedChangesOutcome) {
  PowerGrid pg = testsupport::make_chain_grid(4, 0.02);
  const PowerGrid a =
      perturbed_copy(pg, PerturbationKind::kBoth, 0.15, 5, kBudget);
  const PowerGrid b =
      perturbed_copy(pg, PerturbationKind::kBoth, 0.15, 6, kBudget);
  EXPECT_NE(a.loads()[0].amps, b.loads()[0].amps);
}

TEST(Perturb, OriginalUntouchedByCopy) {
  PowerGrid pg = testsupport::make_chain_grid(4, 0.02);
  const Real before = pg.loads()[0].amps;
  perturbed_copy(pg, PerturbationKind::kBoth, 0.25, 9, kBudget);
  EXPECT_DOUBLE_EQ(pg.loads()[0].amps, before);
}

TEST(Perturb, InvalidGammaThrows) {
  PowerGrid pg = testsupport::make_chain_grid(3, 0.02);
  EXPECT_THROW(
      perturb_grid(pg, PerturbationKind::kBoth, -0.1, 1, kBudget),
      ppdl::ContractViolation);
  EXPECT_THROW(perturb_grid(pg, PerturbationKind::kBoth, 1.0, 1, kBudget),
               ppdl::ContractViolation);
}

TEST(Perturb, RailSagIsCommonMode) {
  // All pads must sag by the same voltage delta (see header rationale).
  grid::PowerGrid pg = testsupport::make_chain_grid(6, 0.02);
  pg.add_pad(2, 1.8);
  pg.add_pad(4, 1.8);
  const PowerGrid p = perturbed_copy(pg, PerturbationKind::kNodeVoltages,
                                     0.25, 13, kBudget);
  const Real delta0 = p.pads()[0].voltage - pg.pads()[0].voltage;
  for (std::size_t i = 1; i < p.pads().size(); ++i) {
    EXPECT_NEAR(p.pads()[i].voltage - pg.pads()[i].voltage, delta0, 1e-12);
  }
}

TEST(Perturb, LoadPerturbationIsPerLoad) {
  grid::PowerGrid pg = testsupport::make_chain_grid(6, 0.02);
  pg.add_load(1, 0.02);
  pg.add_load(2, 0.02);
  pg.add_load(3, 0.02);
  const PowerGrid p = perturbed_copy(
      pg, PerturbationKind::kCurrentWorkloads, 0.25, 13, kBudget);
  // Not all loads move by the same factor.
  const Real f0 = p.loads()[0].amps / pg.loads()[0].amps;
  bool differs = false;
  for (std::size_t i = 1; i < p.loads().size(); ++i) {
    differs |= std::abs(p.loads()[i].amps / pg.loads()[i].amps - f0) > 1e-6;
  }
  EXPECT_TRUE(differs);
}

TEST(Perturb, KindNames) {
  EXPECT_EQ(to_string(PerturbationKind::kNodeVoltages), "node voltages");
  EXPECT_EQ(to_string(PerturbationKind::kCurrentWorkloads),
            "current workloads");
  EXPECT_EQ(to_string(PerturbationKind::kBoth), "both");
}

}  // namespace
}  // namespace ppdl::grid
