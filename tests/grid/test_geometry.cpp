#include <gtest/gtest.h>

#include "grid/geometry.hpp"

namespace ppdl::grid {
namespace {

TEST(Rect, DimensionsAndCenter) {
  const Rect r{1.0, 2.0, 5.0, 10.0};
  EXPECT_DOUBLE_EQ(r.width(), 4.0);
  EXPECT_DOUBLE_EQ(r.height(), 8.0);
  EXPECT_DOUBLE_EQ(r.area(), 32.0);
  EXPECT_DOUBLE_EQ(r.center().x, 3.0);
  EXPECT_DOUBLE_EQ(r.center().y, 6.0);
}

TEST(Rect, ContainsInclusiveBoundary) {
  const Rect r{0.0, 0.0, 1.0, 1.0};
  EXPECT_TRUE(r.contains(Point{0.0, 0.0}));
  EXPECT_TRUE(r.contains(Point{1.0, 1.0}));
  EXPECT_TRUE(r.contains(Point{0.5, 0.5}));
  EXPECT_FALSE(r.contains(Point{1.1, 0.5}));
  EXPECT_FALSE(r.contains(Point{0.5, -0.1}));
}

TEST(Rect, Intersects) {
  const Rect a{0.0, 0.0, 2.0, 2.0};
  const Rect b{1.0, 1.0, 3.0, 3.0};
  const Rect c{5.0, 5.0, 6.0, 6.0};
  EXPECT_TRUE(a.intersects(b));
  EXPECT_TRUE(b.intersects(a));
  EXPECT_FALSE(a.intersects(c));
  // Edge contact counts as intersection.
  const Rect d{2.0, 0.0, 3.0, 1.0};
  EXPECT_TRUE(a.intersects(d));
}

TEST(Rect, OverlapArea) {
  const Rect a{0.0, 0.0, 2.0, 2.0};
  const Rect b{1.0, 1.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(a.overlap_area(b), 1.0);
  const Rect c{10.0, 10.0, 11.0, 11.0};
  EXPECT_DOUBLE_EQ(a.overlap_area(c), 0.0);
  // Self-overlap equals area.
  EXPECT_DOUBLE_EQ(a.overlap_area(a), a.area());
}

}  // namespace
}  // namespace ppdl::grid
