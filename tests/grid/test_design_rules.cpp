#include <gtest/gtest.h>

#include "grid/design_rules.hpp"
#include "grid/generator.hpp"
#include "support/fixtures.hpp"

namespace ppdl::grid {
namespace {

TEST(DesignRules, WidthBoundsFromLayerDefaults) {
  const Layer layer{"M1", true, 0.02, 2.0};
  const DesignRules rules;  // factors 0.5 / 20
  EXPECT_DOUBLE_EQ(min_width(layer, rules), 1.0);
  EXPECT_DOUBLE_EQ(max_width(layer, rules), 40.0);
}

TEST(DesignRules, ClampWidth) {
  const Layer layer{"M1", true, 0.02, 1.0};
  const DesignRules rules;
  EXPECT_DOUBLE_EQ(clamp_width(0.1, layer, rules), 0.5);
  EXPECT_DOUBLE_EQ(clamp_width(100.0, layer, rules), 20.0);
  EXPECT_DOUBLE_EQ(clamp_width(5.0, layer, rules), 5.0);
}

TEST(DesignRules, WidthStepSnapsUpOnly) {
  const Layer layer{"M1", true, 0.02, 1.0};
  DesignRules rules;
  rules.width_step = 0.25;
  // 1.01 snaps up to 1.25, never down to 1.0.
  EXPECT_DOUBLE_EQ(clamp_width(1.01, layer, rules), 1.25);
  // Already legal widths stay put.
  EXPECT_DOUBLE_EQ(clamp_width(1.50, layer, rules), 1.50);
  // Minimum is enforced before snapping.
  EXPECT_DOUBLE_EQ(clamp_width(0.1, layer, rules), 0.5);
  // The maximum still caps the result.
  EXPECT_DOUBLE_EQ(clamp_width(1000.0, layer, rules), 20.0);
}

TEST(DesignRules, ZeroStepMeansContinuousWidths) {
  const Layer layer{"M1", true, 0.02, 1.0};
  const DesignRules rules;  // width_step = 0
  EXPECT_DOUBLE_EQ(clamp_width(1.2345, layer, rules), 1.2345);
}

TEST(DesignRules, CleanGridHasNoViolations) {
  const PowerGrid pg = testsupport::make_chain_grid(5, 0.01);
  const auto violations = check_design_rules(pg, DesignRules{});
  EXPECT_TRUE(violations.empty());
}

TEST(DesignRules, DetectsWidthTooSmallAndTooLarge) {
  PowerGrid pg = testsupport::make_chain_grid(5, 0.01);
  pg.set_wire_width(0, 0.01);  // below 0.5 minimum
  pg.set_wire_width(1, 99.0);  // above 20 maximum
  const auto violations = check_design_rules(pg, DesignRules{});
  // A 99 µm wire on a 10 µm-tall die also trips the Wcore budget, so expect
  // at least the two width violations with the right branches.
  bool saw_small = false;
  bool saw_large = false;
  for (const RuleViolation& v : violations) {
    saw_small |= v.type == ViolationType::kWidthTooSmall && v.branch == 0;
    saw_large |= v.type == ViolationType::kWidthTooLarge && v.branch == 1;
  }
  EXPECT_TRUE(saw_small);
  EXPECT_TRUE(saw_large);
}

TEST(DesignRules, StripesOfLayerGroupsByCoordinate) {
  // Stripe counts stay above the generator's structural minimum of 8 so the
  // requested counts are used verbatim.
  GridSpec spec;
  spec.name = "drc";
  spec.m1_stripes = 12;
  spec.m4_stripes = 12;
  spec.m7_stripes = 3;
  const GeneratedBenchmark b = generate_power_grid(spec, 1.0, 2);
  const auto stripes = stripes_of_layer(b.grid, 0);
  EXPECT_EQ(static_cast<Index>(stripes.size()), spec.m1_stripes);
  for (const auto& [coord, branches] : stripes) {
    EXPECT_EQ(static_cast<Index>(branches.size()), spec.m4_stripes - 1);
  }
}

TEST(DesignRules, WcoreViolationWhenStripesBloat) {
  // Narrow die, few stripes, blow widths up to the max: Σ(w+s) > Wcore.
  PowerGrid pg;
  pg.set_die(Rect{0, 0, 100, 20});
  const Index layer = pg.add_layer(Layer{"M1", true, 0.02, 2.0});
  // Two horizontal stripes at y=5 and y=15.
  const Index a0 = pg.add_node(Point{0, 5}, layer);
  const Index a1 = pg.add_node(Point{100, 5}, layer);
  const Index b0 = pg.add_node(Point{0, 15}, layer);
  const Index b1 = pg.add_node(Point{100, 15}, layer);
  pg.add_wire(a0, a1, layer, 100.0, 2.0);
  pg.add_wire(b0, b1, layer, 100.0, 2.0);
  pg.add_via(a0, b0, layer, 0.1);
  pg.add_pad(a0, 1.8);

  EXPECT_TRUE(check_design_rules(pg, DesignRules{}).empty());

  // 20 µm each (while the die is 20 µm tall): must trip Wcore and spacing.
  pg.set_wire_width(0, 20.0);
  pg.set_wire_width(1, 20.0);
  const auto violations = check_design_rules(pg, DesignRules{});
  bool saw_wcore = false;
  bool saw_spacing = false;
  for (const auto& v : violations) {
    saw_wcore |= v.type == ViolationType::kWcore;
    saw_spacing |= v.type == ViolationType::kSpacing;
  }
  EXPECT_TRUE(saw_wcore);
  EXPECT_TRUE(saw_spacing);
}

TEST(DesignRules, GeneratedGridPassesAtDefaults) {
  GridSpec spec;
  spec.name = "drc2";
  spec.m1_stripes = 10;
  spec.m4_stripes = 10;
  spec.m7_stripes = 3;
  const GeneratedBenchmark b = generate_power_grid(spec, 1.0, 4);
  EXPECT_TRUE(check_design_rules(b.grid, DesignRules{}).empty());
}

}  // namespace
}  // namespace ppdl::grid
