#include <gtest/gtest.h>

#include <set>

#include "common/check.hpp"
#include "grid/generator.hpp"

namespace ppdl::grid {
namespace {

GridSpec small_spec() {
  GridSpec s;
  s.name = "unit";
  s.m1_stripes = 12;
  s.m4_stripes = 12;
  s.m7_stripes = 3;
  s.pad_pitch = 4;
  s.total_current = 1.0;
  s.blocks_x = 3;
  s.blocks_y = 3;
  return s;
}

TEST(Generator, ProducesValidGrid) {
  const GeneratedBenchmark b = generate_power_grid(small_spec(), 1.0, 1);
  EXPECT_NO_THROW(b.grid.validate());
  EXPECT_GT(b.grid.node_count(), 0);
  EXPECT_GT(b.grid.wire_count(), 0);
  EXPECT_GT(b.grid.pad_count(), 0);
  EXPECT_GT(b.grid.load_count(), 0);
}

TEST(Generator, NodeCountMatchesStructure) {
  const GridSpec s = small_spec();
  const GeneratedBenchmark b = generate_power_grid(s, 1.0, 1);
  // M1: m1*m4 crossings; M7: m7*m4; M4: one node per crossing along each
  // stripe (coincident y merges into a single node).
  const Index m1_nodes = s.m1_stripes * s.m4_stripes;
  const Index m7_nodes = s.m7_stripes * s.m4_stripes;
  EXPECT_GE(b.grid.node_count(), m1_nodes + m7_nodes + m1_nodes);
  EXPECT_LE(b.grid.node_count(),
            m1_nodes + m7_nodes + m1_nodes + m7_nodes);
}

TEST(Generator, TotalLoadMatchesSpec) {
  const GeneratedBenchmark b = generate_power_grid(small_spec(), 1.0, 1);
  EXPECT_NEAR(b.grid.total_load_current(), b.spec.total_current, 1e-9);
}

TEST(Generator, DeterministicForSeed) {
  const GeneratedBenchmark a = generate_power_grid(small_spec(), 1.0, 77);
  const GeneratedBenchmark b = generate_power_grid(small_spec(), 1.0, 77);
  ASSERT_EQ(a.grid.node_count(), b.grid.node_count());
  ASSERT_EQ(a.grid.load_count(), b.grid.load_count());
  for (Index i = 0; i < a.grid.load_count(); ++i) {
    EXPECT_DOUBLE_EQ(a.grid.loads()[static_cast<std::size_t>(i)].amps,
                     b.grid.loads()[static_cast<std::size_t>(i)].amps);
  }
}

TEST(Generator, SeedChangesLoads) {
  const GeneratedBenchmark a = generate_power_grid(small_spec(), 1.0, 1);
  const GeneratedBenchmark b = generate_power_grid(small_spec(), 1.0, 2);
  ASSERT_EQ(a.grid.load_count(), b.grid.load_count());
  bool any_diff = false;
  for (Index i = 0; i < a.grid.load_count(); ++i) {
    any_diff |= a.grid.loads()[static_cast<std::size_t>(i)].amps !=
                b.grid.loads()[static_cast<std::size_t>(i)].amps;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Generator, ScaleShrinksNodeCountRoughlyLinearly) {
  GridSpec s = small_spec();
  s.m1_stripes = 64;
  s.m4_stripes = 64;
  s.m7_stripes = 8;
  const GeneratedBenchmark full = generate_power_grid(s, 1.0, 3);
  const GeneratedBenchmark quarter = generate_power_grid(s, 0.25, 3);
  const Real ratio = static_cast<Real>(quarter.grid.node_count()) /
                     static_cast<Real>(full.grid.node_count());
  EXPECT_GT(ratio, 0.15);
  EXPECT_LT(ratio, 0.40);
}

TEST(Generator, ScaleOutOfRangeThrows) {
  EXPECT_THROW(generate_power_grid(small_spec(), 0.0, 1),
               ppdl::ContractViolation);
  EXPECT_THROW(generate_power_grid(small_spec(), 1.5, 1),
               ppdl::ContractViolation);
}

TEST(Generator, PadsSitOnTopLayer) {
  const GeneratedBenchmark b = generate_power_grid(small_spec(), 1.0, 1);
  const Index top = b.grid.layer_count() - 1;
  for (const Pad& pad : b.grid.pads()) {
    EXPECT_EQ(b.grid.node(pad.node).layer, top);
    EXPECT_DOUBLE_EQ(pad.voltage, b.spec.vdd);
  }
}

TEST(Generator, LoadsSitOnBottomLayer) {
  const GeneratedBenchmark b = generate_power_grid(small_spec(), 1.0, 1);
  for (const CurrentLoad& load : b.grid.loads()) {
    EXPECT_EQ(b.grid.node(load.node).layer, 0);
    EXPECT_GT(load.amps, 0.0);
  }
}

TEST(Generator, ViasConnectAdjacentLayers) {
  const GeneratedBenchmark b = generate_power_grid(small_spec(), 1.0, 1);
  Index via_count = 0;
  for (Index i = 0; i < b.grid.branch_count(); ++i) {
    const Branch& br = b.grid.branch(i);
    if (br.kind == BranchKind::kVia) {
      ++via_count;
      EXPECT_NE(b.grid.node(br.n1).layer, b.grid.node(br.n2).layer);
    }
  }
  EXPECT_GT(via_count, 0);
}

TEST(Generator, IbmpgRegistryHasAllEight) {
  const auto& specs = ibmpg_specs();
  ASSERT_EQ(specs.size(), 8u);
  std::set<std::string> names;
  for (const GridSpec& s : specs) {
    names.insert(s.name);
    EXPECT_GT(s.paper_nodes, 0);
    EXPECT_GT(s.paper_resistors, 0);
    EXPECT_GT(s.ir_limit_mv, 0.0);
  }
  EXPECT_TRUE(names.contains("ibmpg1"));
  EXPECT_TRUE(names.contains("ibmpg6"));
  EXPECT_TRUE(names.contains("ibmpgnew2"));
}

TEST(Generator, RegistrySizesAreMonotoneLikeThePaper) {
  // ibmpg1 < ibmpg2 < ibmpg3 in node count at equal scale.
  const auto pg1 = find_ibmpg_spec("ibmpg1");
  const auto pg2 = find_ibmpg_spec("ibmpg2");
  const auto pg3 = find_ibmpg_spec("ibmpg3");
  ASSERT_TRUE(pg1 && pg2 && pg3);
  EXPECT_LT(pg1->m1_stripes, pg2->m1_stripes);
  EXPECT_LT(pg2->m1_stripes, pg3->m1_stripes);
}

TEST(Generator, FindUnknownSpecReturnsNullopt) {
  EXPECT_FALSE(find_ibmpg_spec("ibmpg99").has_value());
}

TEST(Generator, TargetNodeCountApproximatesPaperAtScaleOne) {
  // 2·m4·(m1+m7) should be within 15% of the published node count.
  for (const GridSpec& s : ibmpg_specs()) {
    const Real predicted =
        2.0 * static_cast<Real>(s.m4_stripes) *
        static_cast<Real>(s.m1_stripes + s.m7_stripes);
    const Real ratio = predicted / static_cast<Real>(s.paper_nodes);
    EXPECT_GT(ratio, 0.85) << s.name;
    EXPECT_LT(ratio, 1.15) << s.name;
  }
}

}  // namespace
}  // namespace ppdl::grid
