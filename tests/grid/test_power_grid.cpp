#include <gtest/gtest.h>

#include "common/check.hpp"
#include "grid/power_grid.hpp"
#include "support/fixtures.hpp"

namespace ppdl::grid {
namespace {

TEST(PowerGrid, BuildCountsAndAccessors) {
  const PowerGrid pg = testsupport::make_chain_grid(4, 0.01);
  EXPECT_EQ(pg.node_count(), 4);
  EXPECT_EQ(pg.branch_count(), 3);
  EXPECT_EQ(pg.wire_count(), 3);
  EXPECT_EQ(pg.pad_count(), 1);
  EXPECT_EQ(pg.load_count(), 1);
  EXPECT_EQ(pg.layer_count(), 1);
  EXPECT_EQ(pg.name(), "chain");
}

TEST(PowerGrid, WireResistanceFromGeometry) {
  const PowerGrid pg = testsupport::make_chain_grid(3, 0.01);
  // R = ρ l / w = 0.02 * 100 / 1 = 2 Ω.
  EXPECT_DOUBLE_EQ(pg.branch_resistance(0), 2.0);
}

TEST(PowerGrid, WidthChangesResistance) {
  PowerGrid pg = testsupport::make_chain_grid(3, 0.01);
  pg.set_wire_width(0, 4.0);
  EXPECT_DOUBLE_EQ(pg.branch_resistance(0), 0.5);
}

TEST(PowerGrid, ViaResistanceFixed) {
  PowerGrid pg;
  pg.add_layer(Layer{"M1", true, 0.02, 1.0});
  pg.add_layer(Layer{"M2", false, 0.02, 1.0});
  pg.add_node(Point{0, 0}, 0);
  pg.add_node(Point{0, 0}, 1);
  const Index via = pg.add_via(0, 1, 1, 0.75);
  EXPECT_DOUBLE_EQ(pg.branch_resistance(via), 0.75);
  EXPECT_EQ(pg.wire_count(), 0);
  EXPECT_THROW(pg.set_wire_width(via, 2.0), ContractViolation);
}

TEST(PowerGrid, BranchCenterIsMidpoint) {
  const PowerGrid pg = testsupport::make_chain_grid(2, 0.01);
  const Point c = pg.branch_center(0);
  EXPECT_DOUBLE_EQ(c.x, 50.0);
  EXPECT_DOUBLE_EQ(c.y, 5.0);
}

TEST(PowerGrid, TotalAndPerNodeLoads) {
  PowerGrid pg = testsupport::make_chain_grid(3, 0.02);
  pg.add_load(1, 0.03);
  pg.add_load(1, 0.01);
  EXPECT_NEAR(pg.total_load_current(), 0.06, 1e-15);
  const std::vector<Real> loads = pg.node_load_vector();
  EXPECT_DOUBLE_EQ(loads[0], 0.0);
  EXPECT_NEAR(loads[1], 0.04, 1e-15);
  EXPECT_DOUBLE_EQ(loads[2], 0.02);
}

TEST(PowerGrid, ResetWireWidthsRestoresDefaults) {
  PowerGrid pg = testsupport::make_chain_grid(3, 0.01);
  pg.set_wire_width(0, 9.0);
  pg.set_wire_width(1, 3.0);
  pg.reset_wire_widths();
  EXPECT_DOUBLE_EQ(pg.branch(0).width, 1.0);
  EXPECT_DOUBLE_EQ(pg.branch(1).width, 1.0);
}

TEST(PowerGrid, ScaleLoadAndPadVoltage) {
  PowerGrid pg = testsupport::make_chain_grid(3, 0.02);
  pg.scale_load(0, 1.5);
  EXPECT_NEAR(pg.loads()[0].amps, 0.03, 1e-15);
  pg.scale_pad_voltage(0, 0.9);
  EXPECT_NEAR(pg.pads()[0].voltage, 1.8 * 0.9, 1e-15);
  EXPECT_THROW(pg.scale_load(0, 0.0), ContractViolation);
  EXPECT_THROW(pg.scale_load(5, 1.1), ContractViolation);
}

TEST(PowerGrid, InvalidConstructionThrows) {
  PowerGrid pg;
  pg.add_layer(Layer{"M1", true, 0.02, 1.0});
  pg.add_node(Point{0, 0}, 0);
  pg.add_node(Point{100, 0}, 0);
  EXPECT_THROW(pg.add_wire(0, 0, 0, 100.0, 1.0), ContractViolation);
  EXPECT_THROW(pg.add_wire(0, 5, 0, 100.0, 1.0), ContractViolation);
  EXPECT_THROW(pg.add_wire(0, 1, 0, -1.0, 1.0), ContractViolation);
  EXPECT_THROW(pg.add_wire(0, 1, 0, 100.0, 0.0), ContractViolation);
  EXPECT_THROW(pg.add_node(Point{0, 0}, 3), ContractViolation);
  EXPECT_THROW(pg.add_pad(0, 0.0), ContractViolation);
  EXPECT_THROW(pg.add_load(0, -0.1), ContractViolation);
}

TEST(PowerGrid, ValidateAcceptsHealthyGrid) {
  const PowerGrid pg = testsupport::make_chain_grid(5, 0.01);
  EXPECT_NO_THROW(pg.validate());
}

TEST(PowerGrid, ValidateRejectsGridWithoutPads) {
  PowerGrid pg;
  pg.add_layer(Layer{"M1", true, 0.02, 1.0});
  pg.add_node(Point{0, 0}, 0);
  EXPECT_THROW(pg.validate(), ContractViolation);
}

TEST(PowerGrid, ValidateRejectsUnreachableLoad) {
  PowerGrid pg = testsupport::make_chain_grid(3, 0.01);
  // An isolated node with a load, not connected to the chain.
  const Index orphan = pg.add_node(Point{500.0, 5.0}, 0);
  pg.add_load(orphan, 0.01);
  EXPECT_THROW(pg.validate(), ContractViolation);
}

}  // namespace
}  // namespace ppdl::grid
