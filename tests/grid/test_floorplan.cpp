#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "grid/floorplan.hpp"

namespace ppdl::grid {
namespace {

TEST(Floorplan, AddAndQueryBlocks) {
  Floorplan fp(Rect{0, 0, 100, 100});
  fp.add_block({"a", Rect{0, 0, 10, 10}, 0.5});
  fp.add_block({"b", Rect{50, 50, 60, 70}, 1.5});
  EXPECT_EQ(fp.block_count(), 2);
  EXPECT_DOUBLE_EQ(fp.total_current(), 2.0);
  EXPECT_EQ(fp.block(1).name, "b");
}

TEST(Floorplan, RejectsBlockOutsideDie) {
  Floorplan fp(Rect{0, 0, 10, 10});
  EXPECT_THROW(fp.add_block({"x", Rect{5, 5, 15, 8}, 0.1}),
               ppdl::ContractViolation);
}

TEST(Floorplan, RejectsDegenerateBlock) {
  Floorplan fp(Rect{0, 0, 10, 10});
  EXPECT_THROW(fp.add_block({"x", Rect{5, 5, 5, 8}, 0.1}),
               ppdl::ContractViolation);
  EXPECT_THROW(fp.add_block({"x", Rect{1, 1, 2, 2}, -0.5}),
               ppdl::ContractViolation);
}

TEST(Floorplan, DensityInsideAndOutsideBlocks) {
  Floorplan fp(Rect{0, 0, 100, 100});
  fp.add_block({"a", Rect{0, 0, 10, 10}, 2.0});  // density 0.02 A/µm²
  EXPECT_DOUBLE_EQ(fp.current_density_at(Point{5, 5}), 0.02);
  EXPECT_DOUBLE_EQ(fp.current_density_at(Point{50, 50}), 0.0);
}

TEST(Floorplan, ScaleCurrents) {
  Floorplan fp(Rect{0, 0, 100, 100});
  fp.add_block({"a", Rect{0, 0, 10, 10}, 2.0});
  fp.scale_currents(0.5);
  EXPECT_DOUBLE_EQ(fp.total_current(), 1.0);
  EXPECT_THROW(fp.scale_currents(0.0), ppdl::ContractViolation);
}

TEST(Floorplan, BlockIndexOutOfRangeThrows) {
  Floorplan fp(Rect{0, 0, 10, 10});
  EXPECT_THROW(fp.block(0), ppdl::ContractViolation);
}

TEST(SyntheticFloorplan, ProducesRequestedGridOfBlocks) {
  Rng rng(4);
  const Floorplan fp =
      make_synthetic_floorplan(Rect{0, 0, 1000, 1000}, 4, 3, 5.0, rng);
  EXPECT_EQ(fp.block_count(), 12);
  EXPECT_NEAR(fp.total_current(), 5.0, 1e-9);
}

TEST(SyntheticFloorplan, BlocksStayInsideDieAndDisjointCells) {
  Rng rng(8);
  const Rect die{0, 0, 800, 800};
  const Floorplan fp = make_synthetic_floorplan(die, 4, 4, 1.0, rng);
  for (Index i = 0; i < fp.block_count(); ++i) {
    const Rect& b = fp.block(i).bounds;
    EXPECT_GE(b.x0, die.x0);
    EXPECT_LE(b.x1, die.x1);
    EXPECT_GE(b.y0, die.y0);
    EXPECT_LE(b.y1, die.y1);
  }
  // Blocks in distinct cells must not overlap.
  for (Index i = 0; i < fp.block_count(); ++i) {
    for (Index j = i + 1; j < fp.block_count(); ++j) {
      EXPECT_DOUBLE_EQ(
          fp.block(i).bounds.overlap_area(fp.block(j).bounds), 0.0);
    }
  }
}

TEST(SyntheticFloorplan, DeterministicForSeed) {
  Rng rng1(42);
  Rng rng2(42);
  const Floorplan a =
      make_synthetic_floorplan(Rect{0, 0, 100, 100}, 2, 2, 1.0, rng1);
  const Floorplan b =
      make_synthetic_floorplan(Rect{0, 0, 100, 100}, 2, 2, 1.0, rng2);
  for (Index i = 0; i < a.block_count(); ++i) {
    EXPECT_DOUBLE_EQ(a.block(i).bounds.x0, b.block(i).bounds.x0);
    EXPECT_DOUBLE_EQ(a.block(i).switching_current,
                     b.block(i).switching_current);
  }
}

TEST(SyntheticFloorplan, HeavyTailedActivitySpread) {
  Rng rng(21);
  const Floorplan fp =
      make_synthetic_floorplan(Rect{0, 0, 1000, 1000}, 8, 8, 10.0, rng);
  Real max_cur = 0.0;
  for (Index i = 0; i < fp.block_count(); ++i) {
    max_cur = std::max(max_cur, fp.block(i).switching_current);
  }
  const Real mean_cur = fp.total_current() / static_cast<Real>(fp.block_count());
  // A few hot blocks: the max should clearly exceed the mean.
  EXPECT_GT(max_cur, 1.5 * mean_cur);
}

}  // namespace
}  // namespace ppdl::grid
