#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "linalg/dense.hpp"

namespace ppdl::linalg {
namespace {

TEST(Dense, ConstructionAndIndexing) {
  DenseMatrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(1, 2) = -4.0;
  EXPECT_DOUBLE_EQ(m(1, 2), -4.0);
}

TEST(Dense, IdentityIsDiagonal) {
  const DenseMatrix eye = DenseMatrix::identity(3);
  for (Index i = 0; i < 3; ++i) {
    for (Index j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(eye(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(Dense, RowSpanReadsAndWrites) {
  DenseMatrix m(2, 2);
  auto row = m.row(1);
  row[0] = 7.0;
  EXPECT_DOUBLE_EQ(m(1, 0), 7.0);
  EXPECT_THROW(m.row(2), ppdl::ContractViolation);
}

TEST(Dense, MultiplyKnownProduct) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  DenseMatrix b(2, 2);
  b(0, 0) = 5;
  b(0, 1) = 6;
  b(1, 0) = 7;
  b(1, 1) = 8;
  const DenseMatrix c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Dense, MultiplyIdentityIsNoop) {
  Rng rng(1);
  DenseMatrix a(3, 3);
  for (Real& v : a.data()) {
    v = rng.normal();
  }
  const DenseMatrix c = a.multiply(DenseMatrix::identity(3));
  for (Index i = 0; i < 3; ++i) {
    for (Index j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(c(i, j), a(i, j));
    }
  }
}

TEST(Dense, MultiplyInnerMismatchThrows) {
  DenseMatrix a(2, 3);
  DenseMatrix b(2, 2);
  EXPECT_THROW(a.multiply(b), ppdl::ContractViolation);
}

TEST(Dense, MatVec) {
  DenseMatrix a(2, 3);
  a(0, 0) = 1;
  a(0, 2) = 2;
  a(1, 1) = 3;
  const std::vector<Real> x{1.0, 10.0, 100.0};
  const std::vector<Real> y = a.multiply(x);
  EXPECT_DOUBLE_EQ(y[0], 201.0);
  EXPECT_DOUBLE_EQ(y[1], 30.0);
}

TEST(Dense, TransposeSwapsIndices) {
  DenseMatrix a(2, 3);
  a(0, 1) = 5.0;
  a(1, 2) = -3.0;
  const DenseMatrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_DOUBLE_EQ(t(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(t(2, 1), -3.0);
}

TEST(Dense, FrobeniusNorm) {
  DenseMatrix a(1, 2);
  a(0, 0) = 3.0;
  a(0, 1) = 4.0;
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
}

TEST(Ldlt, SolvesSpdSystem) {
  // A = [4 1; 1 3], b = [1; 2] -> x = [1/11; 7/11]
  DenseMatrix a(2, 2);
  a(0, 0) = 4;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 3;
  const LdltFactorization f(a);
  const std::vector<Real> b{1.0, 2.0};
  const std::vector<Real> x = f.solve(b);
  EXPECT_NEAR(x[0], 1.0 / 11.0, 1e-12);
  EXPECT_NEAR(x[1], 7.0 / 11.0, 1e-12);
}

TEST(Ldlt, RandomSpdRoundTrip) {
  Rng rng(9);
  const Index n = 8;
  // SPD via B Bᵀ + n·I.
  DenseMatrix b(n, n);
  for (Real& v : b.data()) {
    v = rng.normal();
  }
  DenseMatrix a = b.multiply(b.transposed());
  for (Index i = 0; i < n; ++i) {
    a(i, i) += static_cast<Real>(n);
  }
  std::vector<Real> x_true(static_cast<std::size_t>(n));
  for (Real& v : x_true) {
    v = rng.normal();
  }
  const std::vector<Real> rhs = a.multiply(x_true);
  const LdltFactorization f(a);
  const std::vector<Real> x = f.solve(rhs);
  for (Index i = 0; i < n; ++i) {
    EXPECT_NEAR(x[static_cast<std::size_t>(i)],
                x_true[static_cast<std::size_t>(i)], 1e-9);
  }
}

TEST(Ldlt, SingularMatrixThrows) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 1;
  EXPECT_THROW(LdltFactorization{a}, ppdl::ContractViolation);
}

TEST(Ldlt, NonSquareThrows) {
  DenseMatrix a(2, 3);
  EXPECT_THROW(LdltFactorization{a}, ppdl::ContractViolation);
}

TEST(Ldlt, IndefiniteButNonsingularStillSolves) {
  // LDLt without pivoting handles quasi-definite matrices like [-2 0; 0 3].
  DenseMatrix a(2, 2);
  a(0, 0) = -2;
  a(1, 1) = 3;
  const LdltFactorization f(a);
  const std::vector<Real> x = f.solve(std::vector<Real>{2.0, 9.0});
  EXPECT_NEAR(x[0], -1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

}  // namespace
}  // namespace ppdl::linalg
