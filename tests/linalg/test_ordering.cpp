#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/check.hpp"
#include "linalg/ordering.hpp"

namespace ppdl::linalg {
namespace {

/// Path graph matrix with a deliberately scrambled node order.
CsrMatrix scrambled_path(Index n, const std::vector<Index>& label) {
  CooMatrix coo(n, n);
  for (Index i = 0; i < n; ++i) {
    coo.add(label[static_cast<std::size_t>(i)],
            label[static_cast<std::size_t>(i)], 2.0);
    if (i + 1 < n) {
      coo.add_symmetric_pair(label[static_cast<std::size_t>(i)],
                             label[static_cast<std::size_t>(i + 1)], -1.0);
    }
  }
  return CsrMatrix::from_coo(coo);
}

TEST(Rcm, PermutationIsBijective) {
  const std::vector<Index> label{3, 0, 4, 1, 5, 2};
  const CsrMatrix a = scrambled_path(6, label);
  const std::vector<Index> perm = rcm_ordering(a);
  std::vector<Index> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (Index i = 0; i < 6; ++i) {
    EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
  }
}

TEST(Rcm, ReducesBandwidthOfScrambledPath) {
  // Scramble a 40-node path so the natural order has large bandwidth.
  const Index n = 40;
  std::vector<Index> label(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    // Interleave front/back: 0, 39, 1, 38, ...
    label[static_cast<std::size_t>(i)] =
        (i % 2 == 0) ? i / 2 : n - 1 - i / 2;
  }
  const CsrMatrix a = scrambled_path(n, label);
  const Index bw_before = bandwidth(a);
  const std::vector<Index> perm = rcm_ordering(a);
  const CsrMatrix b = a.permuted_symmetric(perm);
  const Index bw_after = bandwidth(b);
  EXPECT_LT(bw_after, bw_before);
  EXPECT_LE(bw_after, 2);  // a path graph can reach bandwidth 1
}

TEST(Rcm, HandlesDisconnectedComponents) {
  CooMatrix coo(5, 5);
  // Component {0,1}, component {2,3,4}.
  coo.add(0, 0, 2.0);
  coo.add(1, 1, 2.0);
  coo.add_symmetric_pair(0, 1, -1.0);
  coo.add(2, 2, 2.0);
  coo.add(3, 3, 2.0);
  coo.add(4, 4, 2.0);
  coo.add_symmetric_pair(2, 3, -1.0);
  coo.add_symmetric_pair(3, 4, -1.0);
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  const std::vector<Index> perm = rcm_ordering(a);
  std::vector<Index> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (Index i = 0; i < 5; ++i) {
    EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
  }
}

TEST(Rcm, SingleNodeGraph) {
  CooMatrix coo(1, 1);
  coo.add(0, 0, 1.0);
  const std::vector<Index> perm = rcm_ordering(CsrMatrix::from_coo(coo));
  ASSERT_EQ(perm.size(), 1u);
  EXPECT_EQ(perm[0], 0);
}

TEST(Ordering, InvertPermutationRoundTrip) {
  const std::vector<Index> perm{2, 0, 3, 1};
  const std::vector<Index> inv = invert_permutation(perm);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    EXPECT_EQ(inv[static_cast<std::size_t>(perm[i])], static_cast<Index>(i));
  }
}

TEST(Ordering, InvalidPermutationThrows) {
  const std::vector<Index> bad{0, 5};
  EXPECT_THROW(invert_permutation(bad), ppdl::ContractViolation);
}

TEST(Ordering, ApplyPermutationMovesValues) {
  const std::vector<Index> perm{1, 2, 0};
  const std::vector<Real> v{10.0, 20.0, 30.0};
  const std::vector<Real> out = apply_permutation(perm, v);
  EXPECT_DOUBLE_EQ(out[1], 10.0);
  EXPECT_DOUBLE_EQ(out[2], 20.0);
  EXPECT_DOUBLE_EQ(out[0], 30.0);
}

TEST(Ordering, BandwidthOfDiagonalIsZero) {
  CooMatrix coo(3, 3);
  for (Index i = 0; i < 3; ++i) {
    coo.add(i, i, 1.0);
  }
  EXPECT_EQ(bandwidth(CsrMatrix::from_coo(coo)), 0);
}

}  // namespace
}  // namespace ppdl::linalg
