#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/dense.hpp"
#include "linalg/ordering.hpp"
#include "linalg/vector_ops.hpp"

namespace ppdl::linalg {
namespace {

CsrMatrix laplacian_2d(Index m) {
  const Index n = m * m;
  CooMatrix coo(n, n);
  for (Index i = 0; i < m; ++i) {
    for (Index j = 0; j < m; ++j) {
      const Index v = i * m + j;
      coo.add(v, v, 4.0);
      if (j + 1 < m) {
        coo.add_symmetric_pair(v, v + 1, -1.0);
      }
      if (i + 1 < m) {
        coo.add_symmetric_pair(v, v + m, -1.0);
      }
    }
  }
  return CsrMatrix::from_coo(coo);
}

TEST(SparseCholesky, SolvesTridiagonalExactly) {
  const Index n = 20;
  CooMatrix coo(n, n);
  for (Index i = 0; i < n; ++i) {
    coo.add(i, i, 3.0);
    if (i + 1 < n) {
      coo.add_symmetric_pair(i, i + 1, -1.0);
    }
  }
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  Rng rng(3);
  std::vector<Real> x_true(static_cast<std::size_t>(n));
  for (Real& v : x_true) {
    v = rng.normal();
  }
  const std::vector<Real> b = a.multiply(x_true);
  const SparseCholesky chol(a);
  const std::vector<Real> x = chol.solve(b);
  for (Index i = 0; i < n; ++i) {
    EXPECT_NEAR(x[static_cast<std::size_t>(i)],
                x_true[static_cast<std::size_t>(i)], 1e-10);
  }
}

TEST(SparseCholesky, SolvesMeshSystem) {
  const CsrMatrix a = laplacian_2d(9);
  Rng rng(5);
  std::vector<Real> x_true(static_cast<std::size_t>(a.rows()));
  for (Real& v : x_true) {
    v = rng.uniform(-1.0, 1.0);
  }
  const std::vector<Real> b = a.multiply(x_true);
  const SparseCholesky chol(a);
  const std::vector<Real> x = chol.solve(b);
  const std::vector<Real> residual = subtract(a.multiply(x), b);
  EXPECT_LT(norm2(residual) / norm2(b), 1e-12);
}

TEST(SparseCholesky, PermutedSolveMatchesUnpermuted) {
  const CsrMatrix a = laplacian_2d(7);
  Rng rng(8);
  std::vector<Real> b(static_cast<std::size_t>(a.rows()));
  for (Real& v : b) {
    v = rng.normal();
  }
  const SparseCholesky plain(a);
  const SparseCholesky permuted(a, rcm_ordering(a));
  const std::vector<Real> x1 = plain.solve(b);
  const std::vector<Real> x2 = permuted.solve(b);
  for (std::size_t i = 0; i < x1.size(); ++i) {
    EXPECT_NEAR(x1[i], x2[i], 1e-9);
  }
}

TEST(SparseCholesky, RcmShrinksTheFactorProfile) {
  // Scrambled path: natural-order envelope is fat, RCM makes it tight.
  const Index n = 60;
  std::vector<Index> label(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    label[static_cast<std::size_t>(i)] = (i % 2 == 0) ? i / 2 : n - 1 - i / 2;
  }
  CooMatrix coo(n, n);
  for (Index i = 0; i < n; ++i) {
    coo.add(label[static_cast<std::size_t>(i)],
            label[static_cast<std::size_t>(i)], 2.5);
    if (i + 1 < n) {
      coo.add_symmetric_pair(label[static_cast<std::size_t>(i)],
                             label[static_cast<std::size_t>(i + 1)], -1.0);
    }
  }
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  const SparseCholesky natural(a);
  const SparseCholesky reordered(a, rcm_ordering(a));
  EXPECT_LT(reordered.factor_nnz(), natural.factor_nnz());
}

TEST(SparseCholesky, MatchesDenseLdltOnRandomSpd) {
  Rng rng(11);
  const Index n = 12;
  DenseMatrix dense(n, n);
  for (Real& v : dense.data()) {
    v = rng.normal();
  }
  DenseMatrix spd = dense.multiply(dense.transposed());
  for (Index i = 0; i < n; ++i) {
    spd(i, i) += static_cast<Real>(n);
  }
  CooMatrix coo(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) {
      coo.add(i, j, spd(i, j));
    }
  }
  const CsrMatrix sparse = CsrMatrix::from_coo(coo);
  std::vector<Real> b(static_cast<std::size_t>(n));
  for (Real& v : b) {
    v = rng.normal();
  }
  const LdltFactorization ldlt(spd);
  const SparseCholesky chol(sparse);
  const std::vector<Real> x1 = ldlt.solve(b);
  const std::vector<Real> x2 = chol.solve(b);
  for (std::size_t i = 0; i < x1.size(); ++i) {
    EXPECT_NEAR(x1[i], x2[i], 1e-9);
  }
}

TEST(SparseCholesky, NonSpdThrows) {
  CooMatrix coo(2, 2);
  coo.add(0, 0, 1.0);
  coo.add(1, 1, 1.0);
  coo.add_symmetric_pair(0, 1, 2.0);  // indefinite
  EXPECT_THROW(SparseCholesky{CsrMatrix::from_coo(coo)},
               ppdl::ContractViolation);
}

TEST(SparseCholesky, NonSquareThrows) {
  CooMatrix coo(2, 3);
  EXPECT_THROW(SparseCholesky{CsrMatrix::from_coo(coo)},
               ppdl::ContractViolation);
}

TEST(SparseCholesky, SolveSizeMismatchThrows) {
  const CsrMatrix a = laplacian_2d(3);
  const SparseCholesky chol(a);
  const std::vector<Real> bad(4, 1.0);
  EXPECT_THROW(chol.solve(bad), ppdl::ContractViolation);
}

TEST(SparseCholesky, ReusableForMultipleRhs) {
  const CsrMatrix a = laplacian_2d(6);
  const SparseCholesky chol(a, rcm_ordering(a));
  Rng rng(13);
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<Real> x_true(static_cast<std::size_t>(a.rows()));
    for (Real& v : x_true) {
      v = rng.normal();
    }
    const std::vector<Real> b = a.multiply(x_true);
    const std::vector<Real> x = chol.solve(b);
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_NEAR(x[i], x_true[i], 1e-9);
    }
  }
}

}  // namespace
}  // namespace ppdl::linalg
