#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "linalg/coo.hpp"
#include "linalg/csr.hpp"

namespace ppdl::linalg {
namespace {

TEST(Coo, TracksEntriesAndDimensions) {
  CooMatrix coo(3, 4);
  coo.add(0, 0, 1.0);
  coo.add(2, 3, -2.0);
  EXPECT_EQ(coo.rows(), 3);
  EXPECT_EQ(coo.cols(), 4);
  EXPECT_EQ(coo.nnz(), 2);
}

TEST(Coo, OutOfRangeThrows) {
  CooMatrix coo(2, 2);
  EXPECT_THROW(coo.add(2, 0, 1.0), ppdl::ContractViolation);
  EXPECT_THROW(coo.add(0, -1, 1.0), ppdl::ContractViolation);
}

TEST(Coo, SymmetricPairAddsBoth) {
  CooMatrix coo(3, 3);
  coo.add_symmetric_pair(0, 2, 5.0);
  EXPECT_EQ(coo.nnz(), 2);
  const CsrMatrix m = CsrMatrix::from_coo(coo);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 5.0);
  EXPECT_DOUBLE_EQ(m.at(2, 0), 5.0);
}

TEST(Csr, FromCooMergesDuplicates) {
  CooMatrix coo(2, 2);
  coo.add(0, 0, 1.0);
  coo.add(0, 0, 2.5);
  coo.add(1, 0, -1.0);
  const CsrMatrix m = CsrMatrix::from_coo(coo);
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.5);
  EXPECT_DOUBLE_EQ(m.at(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 0.0);
}

TEST(Csr, RowsSortedByColumn) {
  CooMatrix coo(1, 5);
  coo.add(0, 4, 4.0);
  coo.add(0, 1, 1.0);
  coo.add(0, 3, 3.0);
  const CsrMatrix m = CsrMatrix::from_coo(coo);
  const auto cols = m.col_idx();
  ASSERT_EQ(cols.size(), 3u);
  EXPECT_TRUE(cols[0] < cols[1] && cols[1] < cols[2]);
}

TEST(Csr, MultiplyMatchesManual) {
  // [1 2; 3 4] * [5; 6] = [17; 39]
  CooMatrix coo(2, 2);
  coo.add(0, 0, 1.0);
  coo.add(0, 1, 2.0);
  coo.add(1, 0, 3.0);
  coo.add(1, 1, 4.0);
  const CsrMatrix m = CsrMatrix::from_coo(coo);
  const std::vector<Real> x{5.0, 6.0};
  const std::vector<Real> y = m.multiply(x);
  EXPECT_DOUBLE_EQ(y[0], 17.0);
  EXPECT_DOUBLE_EQ(y[1], 39.0);
}

TEST(Csr, MultiplyRectangular) {
  CooMatrix coo(2, 3);
  coo.add(0, 2, 1.0);
  coo.add(1, 0, 2.0);
  const CsrMatrix m = CsrMatrix::from_coo(coo);
  const std::vector<Real> x{1.0, 10.0, 100.0};
  const std::vector<Real> y = m.multiply(x);
  EXPECT_DOUBLE_EQ(y[0], 100.0);
  EXPECT_DOUBLE_EQ(y[1], 2.0);
}

TEST(Csr, MultiplySizeMismatchThrows) {
  CooMatrix coo(2, 3);
  const CsrMatrix m = CsrMatrix::from_coo(coo);
  const std::vector<Real> bad(2);
  std::vector<Real> y(2);
  EXPECT_THROW(m.multiply(bad, y), ppdl::ContractViolation);
}

TEST(Csr, DiagonalExtraction) {
  CooMatrix coo(3, 3);
  coo.add(0, 0, 2.0);
  coo.add(1, 2, 9.0);
  coo.add(2, 2, 4.0);
  const CsrMatrix m = CsrMatrix::from_coo(coo);
  const std::vector<Real> d = m.diagonal();
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d[0], 2.0);
  EXPECT_DOUBLE_EQ(d[1], 0.0);
  EXPECT_DOUBLE_EQ(d[2], 4.0);
}

TEST(Csr, SymmetryDetection) {
  CooMatrix sym(2, 2);
  sym.add_symmetric_pair(0, 1, 3.0);
  sym.add(0, 0, 1.0);
  EXPECT_TRUE(CsrMatrix::from_coo(sym).is_symmetric());

  CooMatrix asym(2, 2);
  asym.add(0, 1, 3.0);
  EXPECT_FALSE(CsrMatrix::from_coo(asym).is_symmetric());
}

TEST(Csr, TransposeRoundTrip) {
  CooMatrix coo(2, 3);
  coo.add(0, 1, 5.0);
  coo.add(1, 2, -2.0);
  const CsrMatrix m = CsrMatrix::from_coo(coo);
  const CsrMatrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_DOUBLE_EQ(t.at(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(t.at(2, 1), -2.0);
  const CsrMatrix tt = t.transposed();
  EXPECT_DOUBLE_EQ(tt.at(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(tt.at(1, 2), -2.0);
}

TEST(Csr, SymmetricPermutationPreservesValues) {
  // 3-node chain matrix, permute reversal.
  CooMatrix coo(3, 3);
  coo.add(0, 0, 2.0);
  coo.add(1, 1, 3.0);
  coo.add(2, 2, 4.0);
  coo.add_symmetric_pair(0, 1, -1.0);
  coo.add_symmetric_pair(1, 2, -1.5);
  const CsrMatrix m = CsrMatrix::from_coo(coo);
  const std::vector<Index> perm{2, 1, 0};
  const CsrMatrix p = m.permuted_symmetric(perm);
  EXPECT_DOUBLE_EQ(p.at(2, 2), 2.0);
  EXPECT_DOUBLE_EQ(p.at(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(p.at(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(p.at(2, 1), -1.0);
  EXPECT_DOUBLE_EQ(p.at(0, 1), -1.5);
  EXPECT_TRUE(p.is_symmetric());
}

TEST(Csr, EmptyMatrixBehaves) {
  CooMatrix coo(3, 3);
  const CsrMatrix m = CsrMatrix::from_coo(coo);
  EXPECT_EQ(m.nnz(), 0);
  const std::vector<Real> x{1.0, 2.0, 3.0};
  const std::vector<Real> y = m.multiply(x);
  for (const Real v : y) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

}  // namespace
}  // namespace ppdl::linalg
