#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "linalg/preconditioner.hpp"
#include "linalg/vector_ops.hpp"

namespace ppdl::linalg {
namespace {

CsrMatrix spd_tridiag(Index n, Real diag, Real off) {
  CooMatrix coo(n, n);
  for (Index i = 0; i < n; ++i) {
    coo.add(i, i, diag);
    if (i + 1 < n) {
      coo.add_symmetric_pair(i, i + 1, off);
    }
  }
  return CsrMatrix::from_coo(coo);
}

TEST(IdentityPrecond, CopiesInput) {
  IdentityPreconditioner p;
  const std::vector<Real> r{1.0, -2.0, 3.0};
  std::vector<Real> out(3);
  p.apply(r, out);
  EXPECT_EQ(out, r);
  EXPECT_STREQ(p.name(), "none");
}

TEST(JacobiPrecond, DividesByDiagonal) {
  const CsrMatrix a = spd_tridiag(3, 4.0, -1.0);
  JacobiPreconditioner p(a);
  const std::vector<Real> r{4.0, 8.0, -4.0};
  std::vector<Real> out(3);
  p.apply(r, out);
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  EXPECT_DOUBLE_EQ(out[1], 2.0);
  EXPECT_DOUBLE_EQ(out[2], -1.0);
}

// Regression: a zero diagonal is a property of the *input*, not caller
// misuse, so it must raise the typed solver error (which the robust ladder
// records and escalates past), not a ContractViolation.
TEST(JacobiPrecond, ZeroDiagonalThrowsTypedError) {
  CooMatrix coo(2, 2);
  coo.add(0, 0, 1.0);  // (1,1) missing -> zero diagonal
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  EXPECT_THROW(JacobiPreconditioner{a}, PreconditionerError);
}

TEST(Ic0Precond, ExactForTridiagonal) {
  // IC(0) on a tridiagonal SPD matrix has no dropped fill, so M = A exactly
  // and apply() is a direct solve.
  const Index n = 12;
  const CsrMatrix a = spd_tridiag(n, 3.0, -1.0);
  Ic0Preconditioner p(a);
  std::vector<Real> x_true(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    x_true[static_cast<std::size_t>(i)] = std::sin(static_cast<Real>(i));
  }
  const std::vector<Real> r = a.multiply(x_true);
  std::vector<Real> out(static_cast<std::size_t>(n));
  p.apply(r, out);
  for (Index i = 0; i < n; ++i) {
    EXPECT_NEAR(out[static_cast<std::size_t>(i)],
                x_true[static_cast<std::size_t>(i)], 1e-10);
  }
}

TEST(Ic0Precond, ActionIsSymmetricPositiveDefinite) {
  // PCG requires M⁻¹ to act as an SPD operator: rᵀM⁻¹s = sᵀM⁻¹r and
  // rᵀM⁻¹r > 0 for r ≠ 0. Check on a 2-D 5-point Laplacian.
  const Index m = 6;
  const Index n = m * m;
  CooMatrix coo(n, n);
  for (Index i = 0; i < m; ++i) {
    for (Index j = 0; j < m; ++j) {
      const Index v = i * m + j;
      coo.add(v, v, 4.0);
      if (j + 1 < m) {
        coo.add_symmetric_pair(v, v + 1, -1.0);
      }
      if (i + 1 < m) {
        coo.add_symmetric_pair(v, v + m, -1.0);
      }
    }
  }
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  Ic0Preconditioner p(a);

  std::vector<Real> r(static_cast<std::size_t>(n));
  std::vector<Real> s(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    r[static_cast<std::size_t>(i)] = std::sin(1.3 * static_cast<Real>(i) + 0.2);
    s[static_cast<std::size_t>(i)] = std::cos(0.7 * static_cast<Real>(i) - 1.0);
  }
  std::vector<Real> minv_r(static_cast<std::size_t>(n));
  std::vector<Real> minv_s(static_cast<std::size_t>(n));
  p.apply(r, minv_r);
  p.apply(s, minv_s);

  const Real rms = dot(r, minv_s);
  const Real smr = dot(s, minv_r);
  EXPECT_NEAR(rms, smr, 1e-10 * std::max(std::abs(rms), 1.0));
  EXPECT_GT(dot(r, minv_r), 0.0);
  EXPECT_GT(dot(s, minv_s), 0.0);
}

TEST(Ic0Precond, NonSquareThrows) {
  CooMatrix coo(2, 3);
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  EXPECT_THROW(Ic0Preconditioner{a}, ppdl::ContractViolation);
}

TEST(Factory, MakesEveryKind) {
  const CsrMatrix a = spd_tridiag(4, 2.0, -0.5);
  EXPECT_STREQ(make_preconditioner(PreconditionerKind::kNone, a)->name(),
               "none");
  EXPECT_STREQ(make_preconditioner(PreconditionerKind::kJacobi, a)->name(),
               "jacobi");
  EXPECT_STREQ(make_preconditioner(PreconditionerKind::kIc0, a)->name(),
               "ic0");
  EXPECT_STREQ(make_preconditioner(PreconditionerKind::kIc0Level, a)->name(),
               "ic0-level");
  EXPECT_STREQ(make_preconditioner(PreconditionerKind::kChebyshev, a)->name(),
               "chebyshev");
}

TEST(Factory, ParsesNames) {
  EXPECT_EQ(parse_preconditioner("none"), PreconditionerKind::kNone);
  EXPECT_EQ(parse_preconditioner("jacobi"), PreconditionerKind::kJacobi);
  EXPECT_EQ(parse_preconditioner("ic0"), PreconditionerKind::kIc0);
  EXPECT_EQ(parse_preconditioner("ic0-level"), PreconditionerKind::kIc0Level);
  EXPECT_EQ(parse_preconditioner("chebyshev"),
            PreconditionerKind::kChebyshev);
  EXPECT_THROW(parse_preconditioner("lu"), ppdl::ContractViolation);
}

TEST(Factory, RoundTripsKindNames) {
  for (const PreconditionerKind kind :
       {PreconditionerKind::kNone, PreconditionerKind::kJacobi,
        PreconditionerKind::kIc0, PreconditionerKind::kIc0Level,
        PreconditionerKind::kChebyshev}) {
    EXPECT_EQ(parse_preconditioner(to_string(kind)), kind);
  }
}

}  // namespace
}  // namespace ppdl::linalg
