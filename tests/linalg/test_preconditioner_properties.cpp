// Property-based randomized harness for the preconditioner family.
//
// Random SPD M-matrix grids (the structure power-grid conductance matrices
// have) are generated from seeded RNG streams across sizes and conditioning
// regimes, and every PreconditionerKind must uphold the PCG contract on all
// of them:
//   * M⁻¹ acts as a symmetric positive operator: ⟨z, r'⟩ = ⟨z', r⟩ and
//     ⟨z, r⟩ > 0 for z = M⁻¹r,
//   * preconditioned CG never needs more iterations than plain CG,
//   * the level-scheduled IC(0) solve is bit-for-bit identical to the
//     serial IC(0) solve — at every thread count.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "linalg/cg.hpp"
#include "linalg/ordering.hpp"
#include "linalg/preconditioner.hpp"
#include "linalg/vector_ops.hpp"

namespace ppdl::linalg {
namespace {

constexpr PreconditionerKind kAllKinds[] = {
    PreconditionerKind::kNone, PreconditionerKind::kJacobi,
    PreconditionerKind::kIc0, PreconditionerKind::kIc0Level,
    PreconditionerKind::kChebyshev};

struct GridCase {
  Index rows;
  Index cols;
  U64 seed;
  Real spread;        ///< conductance ratio (conditioning knob)
  Real pad_fraction;  ///< grounded-node density (fewer pads = harsher)
};

// Sizes × conditioning sweep: small/medium grids, mild to harsh spreads.
const GridCase kCases[] = {
    {4, 4, 11, 2.0, 0.5},    {5, 9, 22, 10.0, 0.2},
    {9, 9, 33, 100.0, 0.1},  {12, 7, 44, 1000.0, 0.05},
    {16, 16, 55, 50.0, 0.03},
};

/// Random SPD M-matrix on a rows×cols grid graph: negative off-diagonals
/// (edge conductances drawn from [1, spread]), diagonal = |row sum| plus a
/// positive pad conductance on a random node subset — diagonally dominant,
/// hence SPD; sparsity pattern of a power-grid layer.
CsrMatrix random_grid_matrix(const GridCase& c) {
  Rng rng(c.seed);
  const Index n = c.rows * c.cols;
  std::vector<Real> diag(static_cast<std::size_t>(n), 0.0);
  CooMatrix coo(n, n);
  const auto node = [&](Index i, Index j) { return i * c.cols + j; };
  for (Index i = 0; i < c.rows; ++i) {
    for (Index j = 0; j < c.cols; ++j) {
      const Index u = node(i, j);
      if (j + 1 < c.cols) {
        const Real g = rng.uniform(1.0, c.spread);
        coo.add_symmetric_pair(u, node(i, j + 1), -g);
        diag[static_cast<std::size_t>(u)] += g;
        diag[static_cast<std::size_t>(node(i, j + 1))] += g;
      }
      if (i + 1 < c.rows) {
        const Real g = rng.uniform(1.0, c.spread);
        coo.add_symmetric_pair(u, node(i + 1, j), -g);
        diag[static_cast<std::size_t>(u)] += g;
        diag[static_cast<std::size_t>(node(i + 1, j))] += g;
      }
    }
  }
  bool any_pad = false;
  for (Index v = 0; v < n; ++v) {
    if (rng.uniform() < c.pad_fraction) {
      diag[static_cast<std::size_t>(v)] += rng.uniform(0.5, 2.0);
      any_pad = true;
    }
  }
  if (!any_pad) {
    diag[0] += 1.0;  // keep the matrix nonsingular in every draw
  }
  for (Index v = 0; v < n; ++v) {
    coo.add(v, v, diag[static_cast<std::size_t>(v)]);
  }
  return CsrMatrix::from_coo(coo);
}

std::vector<Real> random_vector(Index n, U64 seed) {
  Rng rng(seed);
  std::vector<Real> v(static_cast<std::size_t>(n));
  for (Real& x : v) {
    x = rng.normal();
  }
  return v;
}

struct ThreadGuard {
  ~ThreadGuard() { parallel::set_num_threads(0); }
};

void expect_bitwise_equal(const std::vector<Real>& a,
                          const std::vector<Real>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // EXPECT_EQ on doubles is exact — bit-identity is the contract.
    ASSERT_EQ(a[i], b[i]) << "element " << i;
  }
}

TEST(PrecondProperties, ApplyActsAsSymmetricPositiveOperator) {
  for (const GridCase& c : kCases) {
    const CsrMatrix a = random_grid_matrix(c);
    const Index n = a.rows();
    const std::vector<Real> r = random_vector(n, c.seed ^ 0xabcdULL);
    const std::vector<Real> s = random_vector(n, c.seed ^ 0x1234ULL);
    for (const PreconditionerKind kind : kAllKinds) {
      const auto p = make_preconditioner(kind, a);
      std::vector<Real> minv_r(static_cast<std::size_t>(n));
      std::vector<Real> minv_s(static_cast<std::size_t>(n));
      p->apply(r, minv_r);
      p->apply(s, minv_s);
      const Real rms = dot(r, minv_s);
      const Real smr = dot(s, minv_r);
      const Real scale = std::max({std::abs(rms), std::abs(smr), 1.0});
      EXPECT_NEAR(rms, smr, 1e-9 * scale)
          << p->name() << " on " << c.rows << "x" << c.cols
          << " seed=" << c.seed;
      EXPECT_GT(dot(r, minv_r), 0.0) << p->name();
      EXPECT_GT(dot(s, minv_s), 0.0) << p->name();
    }
  }
}

TEST(PrecondProperties, PreconditionedCgNeverNeedsMoreIterations) {
  for (const GridCase& c : kCases) {
    const CsrMatrix a = random_grid_matrix(c);
    const std::vector<Real> x_true = random_vector(a.rows(), c.seed + 7);
    const std::vector<Real> b = a.multiply(x_true);

    CgOptions plain;
    plain.preconditioner = PreconditionerKind::kNone;
    plain.stagnation_window = 0;  // let plain CG run to its real count
    const CgResult base = conjugate_gradient(a, b, plain);

    for (const PreconditionerKind kind : kAllKinds) {
      CgOptions opts = plain;
      opts.preconditioner = kind;
      const CgResult r = conjugate_gradient(a, b, opts);
      EXPECT_TRUE(r.converged)
          << to_string(kind) << " on " << c.rows << "x" << c.cols
          << " seed=" << c.seed << ": " << to_string(r.status);
      EXPECT_LE(r.iterations, base.iterations)
          << to_string(kind) << " on " << c.rows << "x" << c.cols
          << " seed=" << c.seed;
    }
  }
}

TEST(PrecondProperties, LevelScheduledMatchesSerialBitForBit) {
  ThreadGuard guard;
  constexpr Index kThreadCounts[] = {1, 2, 8};
  for (const GridCase& c : kCases) {
    const CsrMatrix a = random_grid_matrix(c);
    const Index n = a.rows();
    const Ic0Preconditioner serial(a);
    const LevelScheduledIc0Preconditioner level(a, /*use_rcm=*/false);
    const std::vector<Real> r = random_vector(n, c.seed ^ 0x777ULL);

    std::vector<Real> z_serial(static_cast<std::size_t>(n));
    serial.apply(r, z_serial);

    for (const Index threads : kThreadCounts) {
      parallel::set_num_threads(threads);
      std::vector<Real> z_level(static_cast<std::size_t>(n));
      level.apply(r, z_level);
      SCOPED_TRACE(testing::Message() << "threads=" << threads << " grid="
                                      << c.rows << "x" << c.cols);
      expect_bitwise_equal(z_serial, z_level);
    }
  }
}

// With RCM enabled the factor is the IC(0) of the permuted matrix; the
// bit-for-bit statement is against the serial preconditioner of P·A·Pᵀ,
// conjugated by P.
TEST(PrecondProperties, LevelScheduledRcmMatchesSerialOnPermutedMatrix) {
  ThreadGuard guard;
  for (const GridCase& c : kCases) {
    const CsrMatrix a = random_grid_matrix(c);
    const Index n = a.rows();
    const std::vector<Index> perm = rcm_ordering(a);
    const Ic0Preconditioner serial_permuted(a.permuted_symmetric(perm));
    const LevelScheduledIc0Preconditioner level(a, /*use_rcm=*/true);
    const std::vector<Real> r = random_vector(n, c.seed ^ 0x999ULL);

    const std::vector<Real> r_permuted = apply_permutation(perm, r);
    std::vector<Real> z_permuted(static_cast<std::size_t>(n));
    serial_permuted.apply(r_permuted, z_permuted);

    for (const Index threads : {Index{1}, Index{8}}) {
      parallel::set_num_threads(threads);
      std::vector<Real> z_level(static_cast<std::size_t>(n));
      level.apply(r, z_level);
      for (Index i = 0; i < n; ++i) {
        ASSERT_EQ(z_level[static_cast<std::size_t>(i)],
                  z_permuted[static_cast<std::size_t>(
                      perm[static_cast<std::size_t>(i)])])
            << "node " << i << " threads " << threads;
      }
    }
  }
}

TEST(PrecondProperties, ChebyshevApplyBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  for (const GridCase& c : kCases) {
    const CsrMatrix a = random_grid_matrix(c);
    const Index n = a.rows();
    const ChebyshevPreconditioner p(a);
    EXPECT_GT(p.lambda_max(), 0.0);
    EXPECT_GT(p.lambda_min(), 0.0);
    EXPECT_LT(p.lambda_min(), p.lambda_max());
    const std::vector<Real> r = random_vector(n, c.seed ^ 0x5e5eULL);

    parallel::set_num_threads(1);
    std::vector<Real> z1(static_cast<std::size_t>(n));
    p.apply(r, z1);
    for (const Index threads : {Index{2}, Index{8}}) {
      parallel::set_num_threads(threads);
      std::vector<Real> zt(static_cast<std::size_t>(n));
      p.apply(r, zt);
      SCOPED_TRACE(testing::Message() << "threads=" << threads);
      expect_bitwise_equal(z1, zt);
    }
  }
}

// The level structure itself is part of the determinism story: it must be a
// pure function of the matrix, and RCM must never *increase* the level
// count it was introduced to shrink.
TEST(PrecondProperties, LevelStructureIsDeterministic) {
  for (const GridCase& c : kCases) {
    const CsrMatrix a = random_grid_matrix(c);
    const LevelScheduledIc0Preconditioner p1(a);
    const LevelScheduledIc0Preconditioner p2(a);
    EXPECT_EQ(p1.forward_level_count(), p2.forward_level_count());
    EXPECT_EQ(p1.backward_level_count(), p2.backward_level_count());
    EXPECT_GT(p1.forward_level_count(), 0);
    EXPECT_GT(p1.backward_level_count(), 0);
    EXPECT_LE(p1.forward_level_count(), a.rows());
    EXPECT_LE(p1.backward_level_count(), a.rows());
  }
}

}  // namespace
}  // namespace ppdl::linalg
