// Degenerate-input coverage for every PreconditionerKind: tiny, trivial,
// disconnected, singular, and hostile matrices must either solve or fail
// with a typed error — never UB (this suite also runs under the asan/ubsan
// presets) and never a bare std exception.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "linalg/cg.hpp"
#include "linalg/preconditioner.hpp"
#include "robust/solve.hpp"

namespace ppdl::linalg {
namespace {

constexpr PreconditionerKind kAllKinds[] = {
    PreconditionerKind::kNone, PreconditionerKind::kJacobi,
    PreconditionerKind::kIc0, PreconditionerKind::kIc0Level,
    PreconditionerKind::kChebyshev};

CsrMatrix diagonal_matrix(const std::vector<Real>& d) {
  const auto n = static_cast<Index>(d.size());
  CooMatrix coo(n, n);
  for (Index i = 0; i < n; ++i) {
    coo.add(i, i, d[static_cast<std::size_t>(i)]);
  }
  return CsrMatrix::from_coo(coo);
}

TEST(PrecondDegenerate, OneByOneSolvesExactly) {
  const CsrMatrix a = diagonal_matrix({4.0});
  const std::vector<Real> b{8.0};
  for (const PreconditionerKind kind : kAllKinds) {
    CgOptions opts;
    opts.preconditioner = kind;
    const CgResult r = conjugate_gradient(a, b, opts);
    EXPECT_TRUE(r.converged) << to_string(kind);
    EXPECT_NEAR(r.x[0], 2.0, 1e-12) << to_string(kind);
  }
}

TEST(PrecondDegenerate, DiagonalOnlyMatrixIsOneLevelDeep) {
  const CsrMatrix a = diagonal_matrix({1.0, 2.0, 4.0, 8.0, 16.0});
  const std::vector<Real> b{1.0, 2.0, 4.0, 8.0, 16.0};
  for (const PreconditionerKind kind : kAllKinds) {
    CgOptions opts;
    opts.preconditioner = kind;
    const CgResult r = conjugate_gradient(a, b, opts);
    EXPECT_TRUE(r.converged) << to_string(kind);
    for (const Real xi : r.x) {
      EXPECT_NEAR(xi, 1.0, 1e-10) << to_string(kind);
    }
  }
  // No off-diagonal dependencies -> a single dependency level each way.
  const LevelScheduledIc0Preconditioner p(a);
  EXPECT_EQ(p.forward_level_count(), 1);
  EXPECT_EQ(p.backward_level_count(), 1);
}

TEST(PrecondDegenerate, DisconnectedComponentsSolve) {
  // Two 3-node chains with no coupling between them, each grounded once —
  // SPD but reducible (RCM must order each component separately).
  CooMatrix coo(6, 6);
  for (const Index base : {Index{0}, Index{3}}) {
    for (Index i = 0; i < 2; ++i) {
      coo.add_symmetric_pair(base + i, base + i + 1, -1.0);
    }
    coo.add(base, base, 2.5);  // 1 (chain) + 1.5 (pad)
    coo.add(base + 1, base + 1, 2.0);
    coo.add(base + 2, base + 2, 1.0);
  }
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  const std::vector<Real> x_true{1.0, -2.0, 0.5, 3.0, 0.0, -1.0};
  const std::vector<Real> b = a.multiply(x_true);
  for (const PreconditionerKind kind : kAllKinds) {
    CgOptions opts;
    opts.preconditioner = kind;
    const CgResult r = conjugate_gradient(a, b, opts);
    EXPECT_TRUE(r.converged) << to_string(kind);
    for (std::size_t i = 0; i < x_true.size(); ++i) {
      EXPECT_NEAR(r.x[i], x_true[i], 1e-6) << to_string(kind);
    }
  }
}

// A pure grid Laplacian (no pads) is exactly singular: the all-ones vector
// is in the null space. Every kind must hand robust_solve something it can
// work with — the ladder converges on the compatible system (b ⟂ null
// space) or reports failure in the SolveReport; nothing throws out.
TEST(PrecondDegenerate, SingularLaplacianNeverEscapesTheLadder) {
  const Index n = 8;
  CooMatrix coo(n, n);
  for (Index i = 0; i + 1 < n; ++i) {
    coo.add_symmetric_pair(i, i + 1, -1.0);
  }
  coo.add(0, 0, 1.0);
  coo.add(n - 1, n - 1, 1.0);
  for (Index i = 1; i + 1 < n; ++i) {
    coo.add(i, i, 2.0);
  }
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  // Compatible rhs: b = A·x for some x, so a solution exists despite the
  // singularity.
  std::vector<Real> x_any(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    x_any[static_cast<std::size_t>(i)] = static_cast<Real>(i % 3);
  }
  const std::vector<Real> b = a.multiply(x_any);
  for (const PreconditionerKind kind : kAllKinds) {
    robust::RobustSolveOptions opts;
    opts.cg.preconditioner = kind;
    const robust::RobustSolveResult r = robust::robust_solve(a, b, opts);
    // Typed-failure contract: the ladder always returns a report; x is the
    // best finite iterate (possibly zeros), never NaN/Inf, never UB.
    EXPECT_FALSE(r.report.attempts.empty()) << to_string(kind);
    for (const Real xi : r.x) {
      EXPECT_TRUE(std::isfinite(xi)) << to_string(kind);
    }
  }
}

TEST(PrecondDegenerate, ZeroMatrixFailsWithTypedErrors) {
  CooMatrix coo(3, 3);
  coo.add(0, 0, 0.0);
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  EXPECT_THROW(JacobiPreconditioner{a}, PreconditionerError);
  EXPECT_THROW(Ic0Preconditioner{a}, PreconditionerError);
  EXPECT_THROW((LevelScheduledIc0Preconditioner{a}), PreconditionerError);
  EXPECT_THROW(ChebyshevPreconditioner{a}, PreconditionerError);
}

TEST(PrecondDegenerate, EmptyMatrixIsANoOp) {
  const CsrMatrix a = CsrMatrix::from_coo(CooMatrix(0, 0));
  for (const PreconditionerKind kind : kAllKinds) {
    const auto p = make_preconditioner(kind, a);
    std::vector<Real> r;
    std::vector<Real> out;
    EXPECT_NO_THROW(p->apply(r, out)) << to_string(kind);
  }
}

// Structural misuse stays a contract violation — distinct from the typed
// numerical error hostile input raises.
TEST(PrecondDegenerate, NonSquareIsStillAContractViolation) {
  const CsrMatrix a = CsrMatrix::from_coo(CooMatrix(2, 3));
  EXPECT_THROW(JacobiPreconditioner{a}, ppdl::ContractViolation);
  EXPECT_THROW(Ic0Preconditioner{a}, ppdl::ContractViolation);
  EXPECT_THROW((LevelScheduledIc0Preconditioner{a}), ppdl::ContractViolation);
  EXPECT_THROW(ChebyshevPreconditioner{a}, ppdl::ContractViolation);
}

}  // namespace
}  // namespace ppdl::linalg
