#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "linalg/cg.hpp"
#include "linalg/vector_ops.hpp"

namespace ppdl::linalg {
namespace {

/// 1-D Laplacian (tridiagonal SPD): the resistive-chain conductance matrix.
CsrMatrix laplacian_1d(Index n) {
  CooMatrix coo(n, n);
  for (Index i = 0; i < n; ++i) {
    coo.add(i, i, 2.0);
    if (i + 1 < n) {
      coo.add_symmetric_pair(i, i + 1, -1.0);
    }
  }
  return CsrMatrix::from_coo(coo);
}

/// 2-D 5-point Laplacian on an m×m grid — the structure of real PG meshes.
CsrMatrix laplacian_2d(Index m) {
  const Index n = m * m;
  CooMatrix coo(n, n);
  for (Index i = 0; i < m; ++i) {
    for (Index j = 0; j < m; ++j) {
      const Index v = i * m + j;
      coo.add(v, v, 4.0);
      if (j + 1 < m) {
        coo.add_symmetric_pair(v, v + 1, -1.0);
      }
      if (i + 1 < m) {
        coo.add_symmetric_pair(v, v + m, -1.0);
      }
    }
  }
  return CsrMatrix::from_coo(coo);
}

class CgPreconditioners
    : public ::testing::TestWithParam<PreconditionerKind> {};

TEST_P(CgPreconditioners, Solves1dChainExactly) {
  const Index n = 40;
  const CsrMatrix a = laplacian_1d(n);
  Rng rng(17);
  std::vector<Real> x_true(static_cast<std::size_t>(n));
  for (Real& v : x_true) {
    v = rng.normal();
  }
  const std::vector<Real> b = a.multiply(x_true);
  CgOptions opts;
  opts.preconditioner = GetParam();
  opts.tolerance = 1e-12;
  const CgResult result = conjugate_gradient(a, b, opts);
  ASSERT_TRUE(result.converged);
  for (Index i = 0; i < n; ++i) {
    EXPECT_NEAR(result.x[static_cast<std::size_t>(i)],
                x_true[static_cast<std::size_t>(i)], 1e-7);
  }
}

TEST_P(CgPreconditioners, Solves2dMesh) {
  const CsrMatrix a = laplacian_2d(12);
  Rng rng(23);
  std::vector<Real> x_true(static_cast<std::size_t>(a.rows()));
  for (Real& v : x_true) {
    v = rng.uniform(-1.0, 1.0);
  }
  const std::vector<Real> b = a.multiply(x_true);
  CgOptions opts;
  opts.preconditioner = GetParam();
  const CgResult result = conjugate_gradient(a, b, opts);
  ASSERT_TRUE(result.converged);
  const std::vector<Real> residual = subtract(a.multiply(result.x), b);
  EXPECT_LT(norm2(residual) / norm2(b), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, CgPreconditioners,
                         ::testing::Values(PreconditionerKind::kNone,
                                           PreconditionerKind::kJacobi,
                                           PreconditionerKind::kIc0,
                                           PreconditionerKind::kIc0Level,
                                           PreconditionerKind::kChebyshev),
                         [](const auto& param_info) {
                           // gtest names must be identifiers: '-' -> '_'.
                           std::string name = to_string(param_info.param);
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

TEST(Cg, ZeroRhsGivesZeroSolution) {
  const CsrMatrix a = laplacian_1d(10);
  const std::vector<Real> b(10, 0.0);
  const CgResult result = conjugate_gradient(a, b);
  ASSERT_TRUE(result.converged);
  for (const Real v : result.x) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
  EXPECT_EQ(result.iterations, 0);
}

TEST(Cg, WarmStartFromExactSolutionConvergesImmediately) {
  const CsrMatrix a = laplacian_1d(30);
  Rng rng(5);
  std::vector<Real> x_true(30);
  for (Real& v : x_true) {
    v = rng.normal();
  }
  const std::vector<Real> b = a.multiply(x_true);
  CgOptions opts;
  opts.tolerance = 1e-10;
  const CgResult result = conjugate_gradient(a, b, opts, x_true);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.iterations, 0);
}

TEST(Cg, WarmStartReducesIterations) {
  const CsrMatrix a = laplacian_2d(10);
  Rng rng(6);
  std::vector<Real> x_true(static_cast<std::size_t>(a.rows()));
  for (Real& v : x_true) {
    v = rng.normal();
  }
  const std::vector<Real> b = a.multiply(x_true);
  CgOptions opts;
  opts.preconditioner = PreconditionerKind::kNone;
  const CgResult cold = conjugate_gradient(a, b, opts);

  // Start near the solution.
  std::vector<Real> near = x_true;
  for (Real& v : near) {
    v += 1e-6 * rng.normal();
  }
  const CgResult warm = conjugate_gradient(a, b, opts, near);
  EXPECT_LT(warm.iterations, cold.iterations);
}

TEST(Cg, IterationCapStopsEarly) {
  const CsrMatrix a = laplacian_2d(12);
  Rng rng(8);
  std::vector<Real> b(static_cast<std::size_t>(a.rows()));
  for (Real& v : b) {
    v = rng.normal();
  }
  CgOptions opts;
  opts.preconditioner = PreconditionerKind::kNone;
  opts.max_iterations = 2;
  opts.tolerance = 1e-14;
  const CgResult result = conjugate_gradient(a, b, opts);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 2);
  EXPECT_GT(result.relative_residual, 1e-14);
}

TEST(Cg, ObserverSeesMonotoneIterationNumbers) {
  const CsrMatrix a = laplacian_2d(8);
  std::vector<Real> b(static_cast<std::size_t>(a.rows()), 1.0);
  CgOptions opts;
  std::vector<Index> seen;
  opts.observer = [&](Index it, Real) { seen.push_back(it); };
  conjugate_gradient(a, b, opts);
  ASSERT_FALSE(seen.empty());
  for (std::size_t i = 1; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], seen[i - 1] + 1);
  }
}

TEST(Cg, RhsSizeMismatchThrows) {
  const CsrMatrix a = laplacian_1d(5);
  const std::vector<Real> b(4, 1.0);
  EXPECT_THROW(conjugate_gradient(a, b), ppdl::ContractViolation);
}

TEST(Cg, Ic0BeatsPlainCgOnMesh) {
  const CsrMatrix a = laplacian_2d(20);
  std::vector<Real> b(static_cast<std::size_t>(a.rows()), 1.0);
  CgOptions plain;
  plain.preconditioner = PreconditionerKind::kNone;
  CgOptions ic0;
  ic0.preconditioner = PreconditionerKind::kIc0;
  const CgResult r_plain = conjugate_gradient(a, b, plain);
  const CgResult r_ic0 = conjugate_gradient(a, b, ic0);
  ASSERT_TRUE(r_plain.converged);
  ASSERT_TRUE(r_ic0.converged);
  EXPECT_LT(r_ic0.iterations, r_plain.iterations);
}

}  // namespace
}  // namespace ppdl::linalg
