#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "linalg/vector_ops.hpp"

namespace ppdl::linalg {
namespace {

TEST(VectorOps, DotProduct) {
  const std::vector<Real> x{1.0, 2.0, 3.0};
  const std::vector<Real> y{4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(x, y), 32.0);
}

TEST(VectorOps, DotSizeMismatchThrows) {
  const std::vector<Real> x{1.0};
  const std::vector<Real> y{1.0, 2.0};
  EXPECT_THROW(dot(x, y), ppdl::ContractViolation);
}

TEST(VectorOps, Norm2) {
  const std::vector<Real> x{3.0, 4.0};
  EXPECT_DOUBLE_EQ(norm2(x), 5.0);
}

TEST(VectorOps, NormInf) {
  const std::vector<Real> x{-7.0, 3.0, 5.0};
  EXPECT_DOUBLE_EQ(norm_inf(x), 7.0);
}

TEST(VectorOps, NormOfEmptyIsZero) {
  const std::vector<Real> x;
  EXPECT_DOUBLE_EQ(norm2(x), 0.0);
  EXPECT_DOUBLE_EQ(norm_inf(x), 0.0);
}

TEST(VectorOps, Axpy) {
  const std::vector<Real> x{1.0, 2.0};
  std::vector<Real> y{10.0, 20.0};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
}

TEST(VectorOps, Scale) {
  std::vector<Real> x{1.0, -2.0};
  scale(-3.0, x);
  EXPECT_DOUBLE_EQ(x[0], -3.0);
  EXPECT_DOUBLE_EQ(x[1], 6.0);
}

TEST(VectorOps, Subtract) {
  const std::vector<Real> x{5.0, 7.0};
  const std::vector<Real> y{2.0, 10.0};
  const std::vector<Real> d = subtract(x, y);
  EXPECT_DOUBLE_EQ(d[0], 3.0);
  EXPECT_DOUBLE_EQ(d[1], -3.0);
}

TEST(VectorOps, Hadamard) {
  const std::vector<Real> x{2.0, 3.0};
  const std::vector<Real> y{4.0, 5.0};
  std::vector<Real> out(2);
  hadamard(x, y, out);
  EXPECT_DOUBLE_EQ(out[0], 8.0);
  EXPECT_DOUBLE_EQ(out[1], 15.0);
}

}  // namespace
}  // namespace ppdl::linalg
