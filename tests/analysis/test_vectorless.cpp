#include <gtest/gtest.h>

#include "analysis/vectorless.hpp"
#include "support/fixtures.hpp"

namespace ppdl::analysis {
namespace {

TEST(Vectorless, BoundDominatesVectoredAnalysis) {
  const grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  const IrAnalysisResult vectored = analyze_ir_drop(bench.grid);
  const VectorlessResult bound =
      vectorless_bound(bench.grid, bench.floorplan, 1.2);
  EXPECT_GE(bound.worst_ir_bound, vectored.worst_ir_drop);
}

TEST(Vectorless, UnitBudgetFactorEqualsVectored) {
  const grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  const IrAnalysisResult vectored = analyze_ir_drop(bench.grid);
  const VectorlessResult bound =
      vectorless_bound(bench.grid, bench.floorplan, 1.0);
  EXPECT_NEAR(bound.worst_ir_bound, vectored.worst_ir_drop,
              1e-9 + 1e-6 * vectored.worst_ir_drop);
}

TEST(Vectorless, BoundScalesWithBudgetFactor) {
  const grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  const VectorlessResult a =
      vectorless_bound(bench.grid, bench.floorplan, 1.0);
  const VectorlessResult b =
      vectorless_bound(bench.grid, bench.floorplan, 1.5);
  EXPECT_NEAR(b.worst_ir_bound, 1.5 * a.worst_ir_bound,
              1e-6 * b.worst_ir_bound);
}

TEST(Vectorless, RejectsSubUnityBudget) {
  const grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  EXPECT_THROW(vectorless_bound(bench.grid, bench.floorplan, 0.9),
               ContractViolation);
}

TEST(Vectorless, OriginalGridUntouched) {
  const grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  const Real before = bench.grid.total_load_current();
  vectorless_bound(bench.grid, bench.floorplan, 1.3);
  EXPECT_DOUBLE_EQ(bench.grid.total_load_current(), before);
}

}  // namespace
}  // namespace ppdl::analysis
