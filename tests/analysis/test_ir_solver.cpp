#include <gtest/gtest.h>

#include <cmath>

#include "analysis/ir_solver.hpp"
#include "grid/generator.hpp"
#include "support/fixtures.hpp"

namespace ppdl::analysis {
namespace {

TEST(IrSolver, ChainMatchesAnalyticalSolution) {
  // Chain with load I at the end: every segment carries I, so drop at node k
  // is I · k · R.
  const Real amps = 0.01;
  const grid::PowerGrid pg = testsupport::make_chain_grid(5, amps);
  const IrAnalysisResult res = analyze_ir_drop(pg);
  ASSERT_TRUE(res.converged);
  const Real r = testsupport::chain_segment_resistance();
  for (Index k = 0; k < 5; ++k) {
    EXPECT_NEAR(res.node_ir_drop[static_cast<std::size_t>(k)],
                amps * static_cast<Real>(k) * r, 1e-9);
  }
  EXPECT_NEAR(res.worst_ir_drop, amps * 4 * r, 1e-9);
  EXPECT_EQ(res.worst_node, 4);
}

TEST(IrSolver, BranchCurrentsEqualLoadOnChain) {
  const Real amps = 0.02;
  const grid::PowerGrid pg = testsupport::make_chain_grid(4, amps);
  const IrAnalysisResult res = analyze_ir_drop(pg);
  for (Index b = 0; b < pg.branch_count(); ++b) {
    EXPECT_NEAR(std::abs(res.branch_current[static_cast<std::size_t>(b)]),
                amps, 1e-9);
    EXPECT_NEAR(res.branch_density[static_cast<std::size_t>(b)], amps, 1e-9)
        << "width is 1 µm so density == current";
  }
}

TEST(IrSolver, WideningAWireReducesDrop) {
  grid::PowerGrid pg = testsupport::make_chain_grid(4, 0.02);
  const Real before = analyze_ir_drop(pg).worst_ir_drop;
  pg.set_wire_width(0, 4.0);
  const Real after = analyze_ir_drop(pg).worst_ir_drop;
  EXPECT_LT(after, before);
}

TEST(IrSolver, KclHoldsAtEveryFreeNode) {
  const grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  const grid::PowerGrid& pg = bench.grid;
  const IrAnalysisResult res = analyze_ir_drop(pg);
  ASSERT_TRUE(res.converged);

  std::vector<Real> net(static_cast<std::size_t>(pg.node_count()), 0.0);
  for (Index b = 0; b < pg.branch_count(); ++b) {
    const grid::Branch& br = pg.branch(b);
    const Real i = res.branch_current[static_cast<std::size_t>(b)];
    net[static_cast<std::size_t>(br.n1)] -= i;
    net[static_cast<std::size_t>(br.n2)] += i;
  }
  for (const grid::CurrentLoad& load : pg.loads()) {
    net[static_cast<std::size_t>(load.node)] -= load.amps;
  }
  std::vector<bool> is_pad(static_cast<std::size_t>(pg.node_count()), false);
  for (const grid::Pad& pad : pg.pads()) {
    is_pad[static_cast<std::size_t>(pad.node)] = true;
  }
  const Real tol = 1e-6 * pg.total_load_current();
  for (Index v = 0; v < pg.node_count(); ++v) {
    if (!is_pad[static_cast<std::size_t>(v)]) {
      EXPECT_NEAR(net[static_cast<std::size_t>(v)], 0.0, tol);
    }
  }
}

TEST(IrSolver, PadCurrentsSumToTotalLoad) {
  const grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  const grid::PowerGrid& pg = bench.grid;
  const IrAnalysisResult res = analyze_ir_drop(pg);

  std::vector<bool> is_pad(static_cast<std::size_t>(pg.node_count()), false);
  for (const grid::Pad& pad : pg.pads()) {
    is_pad[static_cast<std::size_t>(pad.node)] = true;
  }
  Real delivered = 0.0;
  for (Index b = 0; b < pg.branch_count(); ++b) {
    const grid::Branch& br = pg.branch(b);
    const Real i = res.branch_current[static_cast<std::size_t>(b)];
    const bool pad1 = is_pad[static_cast<std::size_t>(br.n1)];
    const bool pad2 = is_pad[static_cast<std::size_t>(br.n2)];
    if (pad1 && !pad2) {
      delivered += i;
    } else if (pad2 && !pad1) {
      delivered -= i;
    }
  }
  EXPECT_NEAR(delivered, pg.total_load_current(),
              1e-6 * pg.total_load_current());
}

TEST(IrSolver, VoltagesBoundedByVddAndPositive) {
  const grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  const IrAnalysisResult res = analyze_ir_drop(bench.grid);
  for (const Real v : res.node_voltage) {
    EXPECT_LE(v, bench.grid.vdd() + 1e-9);
    EXPECT_GT(v, 0.0);
  }
}

TEST(IrSolver, WarmStartConvergesFaster) {
  const grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  IrAnalysisOptions opts;
  opts.preconditioner = linalg::PreconditionerKind::kJacobi;
  const IrAnalysisResult cold = analyze_ir_drop(bench.grid, opts);
  IrAnalysisOptions warm = opts;
  warm.initial_voltages = cold.node_voltage;
  const IrAnalysisResult again = analyze_ir_drop(bench.grid, warm);
  EXPECT_LT(again.cg_iterations, cold.cg_iterations);
}

TEST(IrSolver, DropScalesLinearlyWithLoads) {
  grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  const Real base = analyze_ir_drop(bench.grid).worst_ir_drop;
  for (Index i = 0; i < bench.grid.load_count(); ++i) {
    bench.grid.scale_load(i, 2.0);
  }
  const Real doubled = analyze_ir_drop(bench.grid).worst_ir_drop;
  EXPECT_NEAR(doubled, 2.0 * base, 1e-6 * doubled);
}

TEST(IrSolver, CholeskySolverMatchesCg) {
  const grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  IrAnalysisOptions cg;
  IrAnalysisOptions direct;
  direct.solver = SolverKind::kCholesky;
  const IrAnalysisResult a = analyze_ir_drop(bench.grid, cg);
  const IrAnalysisResult b = analyze_ir_drop(bench.grid, direct);
  ASSERT_TRUE(a.converged);
  ASSERT_TRUE(b.converged);
  EXPECT_NEAR(a.worst_ir_drop, b.worst_ir_drop, 1e-6 * a.worst_ir_drop);
  for (std::size_t v = 0; v < a.node_voltage.size(); ++v) {
    EXPECT_NEAR(a.node_voltage[v], b.node_voltage[v], 1e-6);
  }
}

TEST(IrSolver, CholeskyOnChainIsExact) {
  const Real amps = 0.01;
  const grid::PowerGrid pg = testsupport::make_chain_grid(5, amps);
  IrAnalysisOptions direct;
  direct.solver = SolverKind::kCholesky;
  const IrAnalysisResult res = analyze_ir_drop(pg, direct);
  const Real r = testsupport::chain_segment_resistance();
  for (Index k = 0; k < 5; ++k) {
    EXPECT_NEAR(res.node_ir_drop[static_cast<std::size_t>(k)],
                amps * static_cast<Real>(k) * r, 1e-12);
  }
}

TEST(IrSolver, ReportsSolveTime) {
  const grid::PowerGrid pg = testsupport::make_chain_grid(10, 0.01);
  const IrAnalysisResult res = analyze_ir_drop(pg);
  EXPECT_GT(res.solve_seconds, 0.0);
}

}  // namespace
}  // namespace ppdl::analysis
