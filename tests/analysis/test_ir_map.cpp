#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "analysis/ir_map.hpp"
#include "support/fixtures.hpp"

namespace ppdl::analysis {
namespace {

TEST(IrMap, RasterHasRequestedDimensions) {
  const grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  const IrAnalysisResult res = analyze_ir_drop(bench.grid);
  const IrMap map = rasterize_ir_map(bench.grid, res.node_ir_drop, 20, 20);
  EXPECT_EQ(map.width, 20);
  EXPECT_EQ(map.height, 20);
  EXPECT_EQ(map.mv.size(), 400u);
}

TEST(IrMap, AllCellsFilledAfterDilation) {
  const grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  const IrAnalysisResult res = analyze_ir_drop(bench.grid);
  const IrMap map = rasterize_ir_map(bench.grid, res.node_ir_drop, 32, 32);
  for (const Real v : map.mv) {
    EXPECT_GE(v, 0.0);
  }
}

TEST(IrMap, MaxCellMatchesWorstDrop) {
  const grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  const IrAnalysisResult res = analyze_ir_drop(bench.grid);
  const IrMap map = rasterize_ir_map(bench.grid, res.node_ir_drop, 25, 25);
  EXPECT_NEAR(map.max_mv(), res.worst_ir_drop * 1e3, 1e-9);
}

TEST(IrMap, ChainGradientRunsLeftToRight) {
  // Pad on the left, load on the right: drops should not decrease along x.
  const grid::PowerGrid pg = testsupport::make_chain_grid(8, 0.01);
  const IrAnalysisResult res = analyze_ir_drop(pg);
  const IrMap map = rasterize_ir_map(pg, res.node_ir_drop, 8, 1);
  for (Index x = 1; x < map.width; ++x) {
    EXPECT_GE(map.at(x, 0), map.at(x - 1, 0) - 1e-12);
  }
}

TEST(IrMap, AtRejectsOutOfRange) {
  const grid::PowerGrid pg = testsupport::make_chain_grid(4, 0.01);
  const IrAnalysisResult res = analyze_ir_drop(pg);
  const IrMap map = rasterize_ir_map(pg, res.node_ir_drop, 4, 2);
  EXPECT_THROW(map.at(4, 0), ContractViolation);
  EXPECT_THROW(map.at(0, 2), ContractViolation);
  EXPECT_THROW(map.at(-1, 0), ContractViolation);
}

TEST(IrMap, AsciiRenderingHasLegendAndRows) {
  const grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  const IrAnalysisResult res = analyze_ir_drop(bench.grid);
  const IrMap map = rasterize_ir_map(bench.grid, res.node_ir_drop, 16, 16);
  const std::string art = render_ascii(map);
  EXPECT_NE(art.find("legend:"), std::string::npos);
  EXPECT_NE(art.find('@'), std::string::npos);
  // 16 rows + legend line.
  Index lines = 0;
  for (const char c : art) {
    lines += (c == '\n') ? 1 : 0;
  }
  EXPECT_EQ(lines, 17);
}

TEST(IrMap, CsvExportHasHeaderAndAllCells) {
  const grid::PowerGrid pg = testsupport::make_chain_grid(4, 0.01);
  const IrAnalysisResult res = analyze_ir_drop(pg);
  const IrMap map = rasterize_ir_map(pg, res.node_ir_drop, 4, 2);
  const std::string path = std::string(::testing::TempDir()) + "irmap.csv";
  write_ir_map_csv(map, path);
  std::ifstream in(path);
  std::string line;
  Index rows = 0;
  while (std::getline(in, line)) {
    ++rows;
  }
  EXPECT_EQ(rows, 1 + 4 * 2);
}

TEST(IrMap, SizeMismatchThrows) {
  const grid::PowerGrid pg = testsupport::make_chain_grid(4, 0.01);
  const std::vector<Real> wrong(3, 0.0);
  EXPECT_THROW(rasterize_ir_map(pg, wrong, 4, 4), ContractViolation);
}

}  // namespace
}  // namespace ppdl::analysis
