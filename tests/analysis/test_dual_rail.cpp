#include <gtest/gtest.h>

#include "analysis/dual_rail.hpp"
#include "support/fixtures.hpp"

namespace ppdl::analysis {
namespace {

TEST(DualRail, MirrorPreservesTopologyAndSizing) {
  const grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  const grid::PowerGrid gnd = make_ground_mirror(bench.grid);
  EXPECT_EQ(gnd.node_count(), bench.grid.node_count());
  EXPECT_EQ(gnd.branch_count(), bench.grid.branch_count());
  EXPECT_EQ(gnd.load_count(), bench.grid.load_count());
  EXPECT_EQ(gnd.pad_count(), bench.grid.pad_count());
  for (Index b = 0; b < gnd.branch_count(); ++b) {
    EXPECT_DOUBLE_EQ(gnd.branch_resistance(b),
                     bench.grid.branch_resistance(b));
  }
  EXPECT_NO_THROW(gnd.validate());
  EXPECT_EQ(gnd.name(), bench.grid.name() + "_gnd");
}

TEST(DualRail, MatchedMirrorDoublesTheNoise) {
  // With an identical mirror, bounce equals droop node for node, so total
  // noise is exactly twice the single-rail drop.
  const grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  const grid::PowerGrid gnd = make_ground_mirror(bench.grid);
  const DualRailResult result = analyze_dual_rail(bench.grid, gnd);
  ASSERT_TRUE(result.vdd.converged);
  ASSERT_TRUE(result.gnd.converged);
  EXPECT_NEAR(result.worst_noise, 2.0 * result.vdd.worst_ir_drop,
              1e-6 * result.worst_noise);
  for (std::size_t v = 0; v < result.total_noise.size(); ++v) {
    EXPECT_NEAR(result.total_noise[v], 2.0 * result.vdd.node_ir_drop[v],
                1e-9 + 1e-6 * result.total_noise[v]);
  }
}

TEST(DualRail, StrongerGndGridReducesTotalNoise) {
  const grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  grid::PowerGrid gnd = make_ground_mirror(bench.grid);
  const Real matched = analyze_dual_rail(bench.grid, gnd).worst_noise;
  // Widen every GND wire 4x: bounce shrinks, total noise must drop.
  for (Index b = 0; b < gnd.branch_count(); ++b) {
    if (gnd.branch(b).kind == grid::BranchKind::kWire) {
      gnd.set_wire_width(b, gnd.branch(b).width * 4.0);
    }
  }
  const Real reinforced = analyze_dual_rail(bench.grid, gnd).worst_noise;
  EXPECT_LT(reinforced, matched);
  // But never below the VDD-only floor.
  EXPECT_GT(reinforced,
            analyze_ir_drop(bench.grid).worst_ir_drop * (1.0 - 1e-9));
}

TEST(DualRail, MismatchedTopologyThrows) {
  const grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  const grid::PowerGrid chain = testsupport::make_chain_grid(5, 0.01);
  EXPECT_THROW(analyze_dual_rail(bench.grid, chain), ContractViolation);
}

TEST(DualRail, WorstNodeIsConsistent) {
  const grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  const grid::PowerGrid gnd = make_ground_mirror(bench.grid);
  const DualRailResult result = analyze_dual_rail(bench.grid, gnd);
  ASSERT_GE(result.worst_node, 0);
  EXPECT_DOUBLE_EQ(
      result.total_noise[static_cast<std::size_t>(result.worst_node)],
      result.worst_noise);
}

}  // namespace
}  // namespace ppdl::analysis
