#include <gtest/gtest.h>

#include "analysis/mna.hpp"
#include "common/check.hpp"
#include "support/fixtures.hpp"

namespace ppdl::analysis {
namespace {

TEST(Mna, ChainSystemHasExpectedShape) {
  const grid::PowerGrid pg = testsupport::make_chain_grid(4, 0.01);
  const MnaSystem sys = assemble_mna(pg);
  // 4 nodes, 1 pad -> 3 unknowns.
  EXPECT_EQ(sys.free_count, 3);
  EXPECT_EQ(sys.g_reduced.rows(), 3);
  EXPECT_TRUE(sys.g_reduced.is_symmetric(1e-12));
}

TEST(Mna, PadNodeMapsToMinusOne) {
  const grid::PowerGrid pg = testsupport::make_chain_grid(4, 0.01);
  const MnaSystem sys = assemble_mna(pg);
  EXPECT_EQ(sys.free_of_node[0], -1);
  EXPECT_DOUBLE_EQ(sys.pad_voltage[0], 1.8);
  for (Index v = 1; v < 4; ++v) {
    EXPECT_GE(sys.free_of_node[static_cast<std::size_t>(v)], 0);
  }
}

TEST(Mna, RhsCarriesLoadAndPadInjection) {
  const grid::PowerGrid pg = testsupport::make_chain_grid(3, 0.05);
  const MnaSystem sys = assemble_mna(pg);
  // Node 1 adjoins the pad: rhs = g·Vdd; node 2 carries the −I load.
  const Real g = 1.0 / testsupport::chain_segment_resistance();
  const Index f1 = sys.free_of_node[1];
  const Index f2 = sys.free_of_node[2];
  EXPECT_DOUBLE_EQ(sys.rhs[static_cast<std::size_t>(f1)], g * 1.8);
  EXPECT_DOUBLE_EQ(sys.rhs[static_cast<std::size_t>(f2)], -0.05);
}

TEST(Mna, DiagonalIsDegreeWeightedConductance) {
  const grid::PowerGrid pg = testsupport::make_chain_grid(3, 0.05);
  const MnaSystem sys = assemble_mna(pg);
  const Real g = 1.0 / testsupport::chain_segment_resistance();
  const Index f1 = sys.free_of_node[1];  // middle node touches two wires
  EXPECT_NEAR(sys.g_reduced.at(f1, f1), 2.0 * g, 1e-12);
}

TEST(Mna, ExpandSolutionRestoresPadVoltages) {
  const grid::PowerGrid pg = testsupport::make_chain_grid(3, 0.05);
  const MnaSystem sys = assemble_mna(pg);
  std::vector<Real> reduced(static_cast<std::size_t>(sys.free_count), 1.7);
  const std::vector<Real> full = expand_solution(sys, reduced);
  EXPECT_DOUBLE_EQ(full[0], 1.8);  // pad pinned
  EXPECT_DOUBLE_EQ(full[1], 1.7);
  EXPECT_DOUBLE_EQ(full[2], 1.7);
}

TEST(Mna, GridWithoutPadsThrows) {
  grid::PowerGrid pg;
  pg.add_layer(grid::Layer{"M1", true, 0.02, 1.0});
  pg.add_node(grid::Point{0, 0}, 0);
  pg.add_node(grid::Point{100, 0}, 0);
  pg.add_wire(0, 1, 0, 100.0, 1.0);
  EXPECT_THROW(assemble_mna(pg), ContractViolation);
}

TEST(Mna, LoadOnPadNodeIsAbsorbed) {
  grid::PowerGrid pg = testsupport::make_chain_grid(3, 0.05);
  pg.add_load(0, 1.0);  // directly on the pad
  const MnaSystem sys = assemble_mna(pg);
  // The pad supplies it; the free equations see only the original load.
  const Index f2 = sys.free_of_node[2];
  EXPECT_DOUBLE_EQ(sys.rhs[static_cast<std::size_t>(f2)], -0.05);
}

TEST(Mna, ConflictingPadVoltagesThrow) {
  grid::PowerGrid pg = testsupport::make_chain_grid(3, 0.05);
  pg.add_pad(0, 1.5);  // same node, different voltage
  EXPECT_THROW(assemble_mna(pg), ContractViolation);
}

TEST(Mna, DuplicateIdenticalPadsAccepted) {
  grid::PowerGrid pg = testsupport::make_chain_grid(3, 0.05);
  pg.add_pad(0, 1.8);
  EXPECT_NO_THROW(assemble_mna(pg));
}

}  // namespace
}  // namespace ppdl::analysis
