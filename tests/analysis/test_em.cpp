#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "analysis/em.hpp"
#include "support/fixtures.hpp"

namespace ppdl::analysis {
namespace {

TEST(Em, NoViolationsUnderLooseLimit) {
  const grid::PowerGrid pg = testsupport::make_chain_grid(4, 0.01);
  const IrAnalysisResult res = analyze_ir_drop(pg);
  // Density is 0.01 A/µm everywhere; limit of 1 A/µm passes.
  EXPECT_TRUE(check_em(pg, res, 1.0).empty());
}

TEST(Em, AllWiresViolateUnderTightLimit) {
  const grid::PowerGrid pg = testsupport::make_chain_grid(4, 0.01);
  const IrAnalysisResult res = analyze_ir_drop(pg);
  const auto violations = check_em(pg, res, 0.005);
  EXPECT_EQ(static_cast<Index>(violations.size()), pg.wire_count());
  for (const EmViolation& v : violations) {
    EXPECT_NEAR(v.density, 0.01, 1e-9);
    EXPECT_DOUBLE_EQ(v.limit, 0.005);
  }
}

TEST(Em, WideningClearsViolation) {
  grid::PowerGrid pg = testsupport::make_chain_grid(3, 0.01);
  {
    const IrAnalysisResult res = analyze_ir_drop(pg);
    EXPECT_FALSE(check_em(pg, res, 0.008).empty());
  }
  for (Index b = 0; b < pg.branch_count(); ++b) {
    pg.set_wire_width(b, 2.0);  // density halves to 0.005
  }
  const IrAnalysisResult res = analyze_ir_drop(pg);
  EXPECT_TRUE(check_em(pg, res, 0.008).empty());
}

TEST(Em, InvalidLimitThrows) {
  const grid::PowerGrid pg = testsupport::make_chain_grid(3, 0.01);
  const IrAnalysisResult res = analyze_ir_drop(pg);
  EXPECT_THROW(check_em(pg, res, 0.0), ContractViolation);
}

TEST(Blacks, MttfDecreasesWithDensity) {
  const BlacksParams params;
  const Real slow = blacks_mttf_hours(0.1, params);
  const Real fast = blacks_mttf_hours(1.0, params);
  EXPECT_GT(slow, fast);
}

TEST(Blacks, InverseSquareLawWithDefaultExponent) {
  const BlacksParams params;  // n = 2
  const Real a = blacks_mttf_hours(1.0, params);
  const Real b = blacks_mttf_hours(2.0, params);
  EXPECT_NEAR(a / b, 4.0, 1e-9);
}

TEST(Blacks, ZeroCurrentLivesForever) {
  EXPECT_TRUE(std::isinf(blacks_mttf_hours(0.0)));
  EXPECT_TRUE(std::isinf(blacks_mttf_hours(-1.0)));
}

TEST(Blacks, HotterIsShorter) {
  BlacksParams cool;
  cool.temperature_k = 300.0;
  BlacksParams hot;
  hot.temperature_k = 400.0;
  EXPECT_GT(blacks_mttf_hours(0.5, cool), blacks_mttf_hours(0.5, hot));
}

TEST(EmMttfReport, FindsLimitingWire) {
  grid::PowerGrid pg = testsupport::make_chain_grid(4, 0.01);
  pg.set_wire_width(1, 0.5);  // doubles that wire's density
  const IrAnalysisResult res = analyze_ir_drop(pg);
  const EmMttfReport report = em_mttf_report(pg, res);
  EXPECT_EQ(report.limiting_branch, 1);
  EXPECT_GT(report.min_mttf_hours, 0.0);
  EXPECT_FALSE(std::isinf(report.min_mttf_hours));
}

}  // namespace
}  // namespace ppdl::analysis
