#include <gtest/gtest.h>

#include <set>

#include "core/dataset.hpp"
#include "support/fixtures.hpp"

namespace ppdl::core {
namespace {

TEST(Dataset, PerLayerDatasetsCoverAllWires) {
  const grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  const FeatureExtractor extractor;
  const auto datasets =
      build_layer_datasets(bench.grid, FeatureSet::combined(), extractor);
  ASSERT_EQ(datasets.size(), 3u);  // M1, M4, M7 all carry wires
  Index total = 0;
  std::set<Index> layers;
  for (const Dataset& d : datasets) {
    total += d.x.rows();
    layers.insert(d.layer);
    EXPECT_EQ(d.x.rows(), d.y.rows());
    EXPECT_EQ(d.x.rows(), static_cast<Index>(d.branch.size()));
    EXPECT_EQ(d.x.cols(), 3);
  }
  EXPECT_EQ(total, bench.grid.wire_count());
  EXPECT_EQ(layers.size(), 3u);
}

TEST(Dataset, LayerDatasetsAreHomogeneous) {
  const grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  const FeatureExtractor extractor;
  const auto datasets =
      build_layer_datasets(bench.grid, FeatureSet::combined(), extractor);
  for (const Dataset& d : datasets) {
    for (const Index bi : d.branch) {
      EXPECT_EQ(bench.grid.branch(bi).layer, d.layer);
    }
  }
}

TEST(Dataset, FlatDatasetCoversAllWires) {
  const grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  const FeatureExtractor extractor;
  const Dataset d =
      build_dataset(bench.grid, FeatureSet::combined(), extractor);
  EXPECT_EQ(d.x.rows(), bench.grid.wire_count());
  EXPECT_EQ(d.layer, -1);
}

TEST(Dataset, TargetsArePositiveWidths) {
  const grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  const FeatureExtractor extractor;
  const Dataset d =
      build_dataset(bench.grid, FeatureSet::combined(), extractor);
  for (Index r = 0; r < d.y.rows(); ++r) {
    EXPECT_GT(d.y(r, 0), 0.0);
  }
}

TEST(Dataset, TakeRowsSelectsSubset) {
  const grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  const FeatureExtractor extractor;
  const Dataset d =
      build_dataset(bench.grid, FeatureSet::combined(), extractor);
  const Dataset sub = take_rows(d, {0, 2, 4});
  EXPECT_EQ(sub.x.rows(), 3);
  EXPECT_EQ(sub.branch.size(), 3u);
  EXPECT_EQ(sub.branch[0], d.branch[0]);
  EXPECT_EQ(sub.branch[1], d.branch[2]);
  EXPECT_DOUBLE_EQ(sub.y(2, 0), d.y(4, 0));
}

TEST(Dataset, TakeRowsOutOfRangeThrows) {
  const grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  const FeatureExtractor extractor;
  const Dataset d =
      build_dataset(bench.grid, FeatureSet::combined(), extractor);
  EXPECT_THROW(take_rows(d, {d.x.rows()}), ContractViolation);
}

}  // namespace
}  // namespace ppdl::core
