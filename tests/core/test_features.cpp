#include <gtest/gtest.h>

#include "core/features.hpp"
#include "support/fixtures.hpp"

namespace ppdl::core {
namespace {

TEST(FeatureSet, CountsSelectedFeatures) {
  EXPECT_EQ(FeatureSet::combined().count(), 3);
  EXPECT_EQ(FeatureSet::only_x().count(), 1);
  EXPECT_EQ(FeatureSet::only_y().count(), 1);
  EXPECT_EQ(FeatureSet::only_id().count(), 1);
}

TEST(FeatureExtractor, OneRowPerWire) {
  const grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  const FeatureExtractor extractor;
  const auto rows = extractor.extract(bench.grid);
  EXPECT_EQ(static_cast<Index>(rows.size()), bench.grid.wire_count());
}

TEST(FeatureExtractor, CoordinatesAreBranchCenters) {
  const grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  const FeatureExtractor extractor;
  const auto rows = extractor.extract(bench.grid);
  for (const InterconnectFeatures& f : rows) {
    const grid::Point c = bench.grid.branch_center(f.branch);
    EXPECT_DOUBLE_EQ(f.x, c.x);
    EXPECT_DOUBLE_EQ(f.y, c.y);
    EXPECT_GE(f.id, 0.0);
  }
}

TEST(FeatureExtractor, IdTracksLocalLoad) {
  // Chain grid with one load at the far end: wires near the load must see a
  // larger Id than wires near the pad.
  grid::PowerGrid pg = testsupport::make_chain_grid(20, 0.05);
  const FeatureExtractor extractor;
  const auto rows = extractor.extract(pg);
  ASSERT_EQ(rows.size(), 19u);
  EXPECT_GT(rows.back().id, rows.front().id);
  EXPECT_GT(rows.back().id, 0.0);
}

TEST(FeatureExtractor, IdScalesWithLoads) {
  grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  const FeatureExtractor extractor;
  const auto before = extractor.extract(bench.grid);
  for (Index i = 0; i < bench.grid.load_count(); ++i) {
    bench.grid.scale_load(i, 2.0);
  }
  const auto after = extractor.extract(bench.grid);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(after[i].id, 2.0 * before[i].id, 1e-9);
  }
}

TEST(FeatureExtractor, ToMatrixRespectsSubset) {
  const grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  const FeatureExtractor extractor;
  const auto rows = extractor.extract(bench.grid);

  const nn::Matrix all = FeatureExtractor::to_matrix(rows, FeatureSet::combined());
  EXPECT_EQ(all.cols(), 3);
  const nn::Matrix only_id =
      FeatureExtractor::to_matrix(rows, FeatureSet::only_id());
  EXPECT_EQ(only_id.cols(), 1);
  EXPECT_DOUBLE_EQ(only_id(0, 0), rows[0].id);
  const nn::Matrix xy =
      FeatureExtractor::to_matrix(rows, FeatureSet{true, true, false});
  EXPECT_EQ(xy.cols(), 2);
  EXPECT_DOUBLE_EQ(xy(0, 0), rows[0].x);
  EXPECT_DOUBLE_EQ(xy(0, 1), rows[0].y);
}

TEST(FeatureExtractor, EmptySubsetThrows) {
  const grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  const FeatureExtractor extractor;
  const auto rows = extractor.extract(bench.grid);
  EXPECT_THROW(
      FeatureExtractor::to_matrix(rows, FeatureSet{false, false, false}),
      ContractViolation);
}

TEST(FeatureExtractor, WidthTargetsMatchGrid) {
  const grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  const FeatureExtractor extractor;
  const auto rows = extractor.extract(bench.grid);
  const nn::Matrix y = FeatureExtractor::width_targets(bench.grid, rows);
  EXPECT_EQ(y.rows(), static_cast<Index>(rows.size()));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_DOUBLE_EQ(y(static_cast<Index>(i), 0),
                     bench.grid.branch(rows[i].branch).width);
  }
}

TEST(FeatureExtractor, InvalidWindowThrows) {
  EXPECT_THROW(FeatureExtractor{0.0}, ContractViolation);
}

}  // namespace
}  // namespace ppdl::core
