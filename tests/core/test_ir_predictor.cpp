#include <gtest/gtest.h>

#include <cmath>

#include "analysis/ir_solver.hpp"
#include "common/rng.hpp"
#include "core/ir_predictor.hpp"
#include "support/fixtures.hpp"

namespace ppdl::core {
namespace {

TEST(IrPredictor, ExactOnChain) {
  // A chain is its own spanning tree, so the Kirchhoff estimate is exact.
  const Real amps = 0.01;
  const grid::PowerGrid pg = testsupport::make_chain_grid(6, amps);
  const KirchhoffIrPredictor predictor;
  const IrPrediction p = predictor.predict(pg);
  const Real r = testsupport::chain_segment_resistance();
  for (Index k = 0; k < 6; ++k) {
    EXPECT_NEAR(p.node_ir_drop[static_cast<std::size_t>(k)],
                amps * static_cast<Real>(k) * r, 1e-12);
  }
  EXPECT_EQ(p.worst_node, 5);
}

TEST(IrPredictor, RawEstimateIsPessimisticOnMesh) {
  // Tree routing ignores parallel paths, so the uncalibrated estimate must
  // dominate the true solve on a meshed grid.
  const grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  const analysis::IrAnalysisResult truth = analysis::analyze_ir_drop(bench.grid);
  const KirchhoffIrPredictor predictor;  // correction = 1
  const IrPrediction raw = predictor.predict(bench.grid);
  EXPECT_GE(raw.worst_ir_drop, truth.worst_ir_drop * 0.99);
}

TEST(IrPredictor, CalibrationMatchesGoldenWorstDrop) {
  const grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  const analysis::IrAnalysisResult truth = analysis::analyze_ir_drop(bench.grid);
  KirchhoffIrPredictor predictor;
  predictor.calibrate(bench.grid, truth.worst_ir_drop);
  const IrPrediction p = predictor.predict(bench.grid);
  EXPECT_NEAR(p.worst_ir_drop, truth.worst_ir_drop,
              1e-9 + 1e-9 * truth.worst_ir_drop);
  EXPECT_LT(predictor.correction(), 1.0 + 1e-12);
}

TEST(IrPredictor, CalibratedPredictionTracksPerturbedTruth) {
  grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  const analysis::IrAnalysisResult golden = analysis::analyze_ir_drop(bench.grid);
  KirchhoffIrPredictor predictor;
  predictor.calibrate(bench.grid, golden.worst_ir_drop);

  // Scale all loads by 1.3: truth scales linearly, so must the prediction.
  for (Index i = 0; i < bench.grid.load_count(); ++i) {
    bench.grid.scale_load(i, 1.3);
  }
  const analysis::IrAnalysisResult truth = analysis::analyze_ir_drop(bench.grid);
  const IrPrediction p = predictor.predict(bench.grid);
  EXPECT_NEAR(p.worst_ir_drop, truth.worst_ir_drop,
              0.02 * truth.worst_ir_drop);
}

TEST(IrPredictor, MuchFasterThanFullSolveAtScale) {
  core::BenchmarkOptions opts;
  opts.scale = 0.04;
  opts.seed = 3;
  const grid::GeneratedBenchmark bench = core::make_benchmark("ibmpg2", opts);
  const analysis::IrAnalysisResult truth = analysis::analyze_ir_drop(bench.grid);
  const KirchhoffIrPredictor predictor;
  const IrPrediction p = predictor.predict(bench.grid);
  EXPECT_LT(p.predict_seconds, truth.solve_seconds);
}

TEST(IrPredictor, PerturbedPadVoltagesRaiseDrops) {
  grid::PowerGrid pg = testsupport::make_chain_grid(4, 0.01);
  KirchhoffIrPredictor predictor;
  const Real base = predictor.predict(pg).worst_ir_drop;
  pg.scale_pad_voltage(0, (1.8 - 0.05) / 1.8);  // pad sags by 50 mV
  const Real sagged = predictor.predict(pg).worst_ir_drop;
  EXPECT_NEAR(sagged, base + 0.05, 1e-9);
}

TEST(IrPredictor, CalibrationRejectsBadInput) {
  const grid::PowerGrid pg = testsupport::make_chain_grid(4, 0.01);
  KirchhoffIrPredictor predictor;
  EXPECT_THROW(predictor.calibrate(pg, 0.0), ContractViolation);
}

TEST(IrPredictor, FrozenForestMakesCalibrationTransferSmooth) {
  // After calibration, predictions on a width-perturbed copy of the same
  // topology must stay close to the true solve: the frozen routing forest
  // keeps the estimate continuous in widths (a re-routed forest would not).
  grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  const analysis::IrAnalysisResult golden = analysis::analyze_ir_drop(bench.grid);
  KirchhoffIrPredictor predictor;
  predictor.calibrate(bench.grid, golden.node_ir_drop);

  // Nudge every wire width by ±5% deterministically.
  Rng rng(77);
  grid::PowerGrid nudged = bench.grid;
  for (Index b = 0; b < nudged.branch_count(); ++b) {
    if (nudged.branch(b).kind == grid::BranchKind::kWire) {
      nudged.set_wire_width(b,
                            nudged.branch(b).width * rng.uniform(0.95, 1.05));
    }
  }
  const analysis::IrAnalysisResult truth = analysis::analyze_ir_drop(nudged);
  const IrPrediction p = predictor.predict(nudged);
  EXPECT_NEAR(p.worst_ir_drop, truth.worst_ir_drop,
              0.15 * truth.worst_ir_drop);
}

TEST(IrPredictor, PerNodeCalibrationReproducesGoldenField) {
  grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  const analysis::IrAnalysisResult golden = analysis::analyze_ir_drop(bench.grid);
  KirchhoffIrPredictor predictor;
  predictor.calibrate(bench.grid, golden.node_ir_drop);
  const IrPrediction p = predictor.predict(bench.grid);
  // On the calibration grid itself the per-node map is essentially exact
  // (up to the ratio clamp on numerically tiny nodes).
  Real worst_err = 0.0;
  for (std::size_t v = 0; v < p.node_ir_drop.size(); ++v) {
    worst_err = std::max(worst_err,
                         std::abs(p.node_ir_drop[v] - golden.node_ir_drop[v]));
  }
  EXPECT_LT(worst_err, 0.05 * golden.worst_ir_drop);
}

TEST(IrPredictor, FallsBackToDynamicForestOnNewTopology) {
  grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  const analysis::IrAnalysisResult golden = analysis::analyze_ir_drop(bench.grid);
  KirchhoffIrPredictor predictor;
  predictor.calibrate(bench.grid, golden.node_ir_drop);
  // A different grid (chain) has a different node count: global fallback.
  const grid::PowerGrid chain = testsupport::make_chain_grid(7, 0.01);
  EXPECT_NO_THROW(predictor.predict(chain));
}

TEST(IrPredictor, GridWithoutPadsThrows) {
  grid::PowerGrid pg;
  pg.add_layer(grid::Layer{"M1", true, 0.02, 1.0});
  pg.add_node(grid::Point{0, 0}, 0);
  const KirchhoffIrPredictor predictor;
  EXPECT_THROW(predictor.predict(pg), ContractViolation);
}

}  // namespace
}  // namespace ppdl::core
