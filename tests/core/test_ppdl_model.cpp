#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hpp"
#include "core/flow.hpp"
#include "nn/model_io.hpp"
#include "core/ppdl_model.hpp"
#include "planner/conventional_planner.hpp"
#include "support/fixtures.hpp"

namespace ppdl::core {
namespace {

PpdlModelConfig fast_config() {
  PpdlModelConfig c;
  c.hidden_layers = 4;
  c.hidden_units = 16;
  c.train.epochs = 25;
  return c;
}

/// Golden design shared across tests (planner is deterministic).
const grid::PowerGrid& golden_grid() {
  static const grid::PowerGrid golden = [] {
    grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
    planner::PlannerOptions opts = planner_options_for(bench.spec, 40);
    planner::run_conventional_planner(bench.grid, opts);
    return bench.grid;
  }();
  return golden;
}

TEST(PpdlModel, TrainsOneSubModelPerLayer) {
  PowerPlanningDL model(fast_config());
  const TrainReport report = model.fit(golden_grid());
  EXPECT_TRUE(model.trained());
  EXPECT_EQ(report.layers.size(), 3u);
  EXPECT_GT(report.train_seconds, 0.0);
  for (const LayerFit& fit : report.layers) {
    EXPECT_GT(fit.rows, 0);
    EXPECT_GT(fit.history.epochs_run, 0);
    // Training reduced the (scaled) loss.
    EXPECT_LT(fit.history.train_loss.back(),
              fit.history.train_loss.front());
  }
}

TEST(PpdlModel, PredictBeforeFitThrows) {
  PowerPlanningDL model(fast_config());
  EXPECT_THROW(model.predict(golden_grid()), ContractViolation);
}

TEST(PpdlModel, PredictionCoversEveryWire) {
  PowerPlanningDL model(fast_config());
  model.fit(golden_grid());
  const WidthPrediction p = model.predict(golden_grid());
  EXPECT_EQ(static_cast<Index>(p.branch.size()), golden_grid().wire_count());
  EXPECT_EQ(p.branch.size(), p.predicted.size());
  for (const Real w : p.predicted) {
    EXPECT_GT(w, 0.0);
  }
  EXPECT_GT(p.predict_seconds, 0.0);
}

TEST(PpdlModel, FitsTrainingGridWell) {
  PowerPlanningDL model(fast_config());
  model.fit(golden_grid());
  const WidthPrediction p = model.predict(golden_grid());

  std::vector<Real> truth;
  std::vector<Real> pred;
  for (std::size_t i = 0; i < p.branch.size(); ++i) {
    truth.push_back(golden_grid().branch(p.branch[i]).width);
    pred.push_back(p.predicted[i]);
  }
  EXPECT_GT(r2_score(truth, pred), 0.6);
}

TEST(PpdlModel, ApplyWidthsWritesIntoGrid) {
  PowerPlanningDL model(fast_config());
  model.fit(golden_grid());
  grid::PowerGrid target = golden_grid();
  target.reset_wire_widths();
  const WidthPrediction p = model.predict(target);
  PowerPlanningDL::apply_widths(target, p);
  for (std::size_t i = 0; i < p.branch.size(); ++i) {
    EXPECT_DOUBLE_EQ(target.branch(p.branch[i]).width, p.predicted[i]);
  }
}

TEST(PpdlModel, DeterministicTraining) {
  PowerPlanningDL a(fast_config());
  PowerPlanningDL b(fast_config());
  a.fit(golden_grid());
  b.fit(golden_grid());
  const WidthPrediction pa = a.predict(golden_grid());
  const WidthPrediction pb = b.predict(golden_grid());
  ASSERT_EQ(pa.predicted.size(), pb.predicted.size());
  for (std::size_t i = 0; i < pa.predicted.size(); ++i) {
    EXPECT_DOUBLE_EQ(pa.predicted[i], pb.predicted[i]);
  }
}

TEST(PpdlModel, SingleFeatureConfigWorks) {
  PpdlModelConfig c = fast_config();
  c.features = FeatureSet::only_id();
  PowerPlanningDL model(c);
  model.fit(golden_grid());
  const WidthPrediction p = model.predict(golden_grid());
  EXPECT_EQ(static_cast<Index>(p.branch.size()), golden_grid().wire_count());
}

TEST(PpdlModel, InvalidConfigThrows) {
  PpdlModelConfig c = fast_config();
  c.hidden_layers = 0;
  EXPECT_THROW(PowerPlanningDL{c}, ContractViolation);
}

TEST(PpdlModel, SaveLoadRoundTripPreservesPredictions) {
  PowerPlanningDL model(fast_config());
  model.fit(golden_grid());
  std::stringstream ss;
  model.save(ss);
  const PowerPlanningDL loaded = PowerPlanningDL::load(ss);

  const WidthPrediction a = model.predict(golden_grid());
  const WidthPrediction b = loaded.predict(golden_grid());
  ASSERT_EQ(a.predicted.size(), b.predicted.size());
  for (std::size_t i = 0; i < a.predicted.size(); ++i) {
    EXPECT_EQ(a.predicted[i], b.predicted[i]);  // hexfloat: bit-exact
  }
}

TEST(PpdlModel, SaveUntrainedThrows) {
  PowerPlanningDL model(fast_config());
  std::stringstream ss;
  EXPECT_THROW(model.save(ss), ContractViolation);
}

TEST(PpdlModel, LoadGarbageThrows) {
  std::istringstream in("definitely not a model\n");
  EXPECT_THROW(PowerPlanningDL::load(in), nn::ModelIoError);
}

TEST(PpdlModel, LoadTruncatedThrows) {
  PowerPlanningDL model(fast_config());
  model.fit(golden_grid());
  std::ostringstream os;
  model.save(os);
  const std::string text = os.str();
  std::istringstream in(text.substr(0, text.size() / 3));
  EXPECT_THROW(PowerPlanningDL::load(in), nn::ModelIoError);
}

TEST(PpdlModel, LogTargetOffStillWorks) {
  PpdlModelConfig c = fast_config();
  c.log_target = false;
  PowerPlanningDL model(c);
  model.fit(golden_grid());
  const WidthPrediction p = model.predict(golden_grid());
  EXPECT_EQ(static_cast<Index>(p.branch.size()), golden_grid().wire_count());
  for (const Real w : p.predicted) {
    EXPECT_GT(w, 0.0);
  }
}

}  // namespace
}  // namespace ppdl::core
