#include <gtest/gtest.h>

#include "analysis/ir_solver.hpp"
#include "core/benchmarks.hpp"

namespace ppdl::core {
namespace {

BenchmarkOptions tiny_options() {
  BenchmarkOptions o;
  o.scale = 0.01;
  o.seed = 7;
  return o;
}

TEST(Benchmarks, UnknownNameThrows) {
  EXPECT_THROW(make_benchmark("ibmpg42", tiny_options()), ContractViolation);
}

TEST(Benchmarks, CalibrationHitsViolationTarget) {
  BenchmarkOptions o = tiny_options();
  o.initial_violation_factor = 2.0;
  const grid::GeneratedBenchmark bench = make_benchmark("ibmpg1", o);
  const analysis::IrAnalysisResult res = analysis::analyze_ir_drop(bench.grid);
  const Real target = bench.spec.ir_limit_mv * 1e-3 * 2.0;
  EXPECT_NEAR(res.worst_ir_drop, target, 0.01 * target);
}

TEST(Benchmarks, AutoJmaxBindsButSatisfiable) {
  const grid::GeneratedBenchmark bench = make_benchmark("ibmpg1", tiny_options());
  const analysis::IrAnalysisResult res = analysis::analyze_ir_drop(bench.grid);
  // jmax = headroom × worst density → initial design violates EM (shape of a
  // realistic unplanned grid) but widening can fix it.
  EXPECT_GT(res.worst_density, bench.spec.jmax);
  EXPECT_LT(bench.spec.jmax, res.worst_density * 1.01);
  EXPECT_GT(bench.spec.jmax, 0.0);
}

TEST(Benchmarks, NoCalibrationLeavesSpecCurrent) {
  BenchmarkOptions o = tiny_options();
  o.calibrate = false;
  const grid::GeneratedBenchmark bench = make_benchmark("ibmpg1", o);
  // The generator normalizes loads to the (scaled) spec current.
  EXPECT_NEAR(bench.grid.total_load_current(), bench.spec.total_current,
              1e-9);
}

TEST(Benchmarks, DeterministicAcrossCalls) {
  const grid::GeneratedBenchmark a = make_benchmark("ibmpg2", tiny_options());
  const grid::GeneratedBenchmark b = make_benchmark("ibmpg2", tiny_options());
  ASSERT_EQ(a.grid.load_count(), b.grid.load_count());
  for (Index i = 0; i < a.grid.load_count(); ++i) {
    EXPECT_DOUBLE_EQ(a.grid.loads()[static_cast<std::size_t>(i)].amps,
                     b.grid.loads()[static_cast<std::size_t>(i)].amps);
  }
  EXPECT_DOUBLE_EQ(a.spec.jmax, b.spec.jmax);
}

TEST(Benchmarks, FloorplanCurrentsTrackCalibration) {
  const grid::GeneratedBenchmark bench = make_benchmark("ibmpg1", tiny_options());
  EXPECT_NEAR(bench.floorplan.total_current(), bench.spec.total_current,
              0.01 * bench.spec.total_current);
}

TEST(Benchmarks, AllEightSpecsGenerateAtTinyScale) {
  for (const grid::GridSpec& spec : grid::ibmpg_specs()) {
    BenchmarkOptions o = tiny_options();
    const grid::GeneratedBenchmark bench = make_benchmark(spec, o);
    EXPECT_NO_THROW(bench.grid.validate()) << spec.name;
    EXPECT_GT(bench.grid.wire_count(), 0) << spec.name;
  }
}

}  // namespace
}  // namespace ppdl::core
