#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "support/fixtures.hpp"

namespace ppdl::core {
namespace {

FlowOptions fast_flow_options() {
  FlowOptions o;
  o.benchmark.scale = 0.02;
  o.benchmark.seed = 21;
  o.model.hidden_layers = 6;
  o.model.hidden_units = 24;
  o.model.train.epochs = 50;
  return o;
}

/// One full flow, shared by the assertions below (runs the planner twice and
/// trains a model — worth amortizing).
const FlowResult& shared_flow() {
  static const FlowResult result = run_flow("ibmpg1", fast_flow_options());
  return result;
}

TEST(Flow, GoldenPhaseConverges) {
  EXPECT_TRUE(shared_flow().golden_planner.converged);
  EXPECT_GT(shared_flow().golden_planner.iterations, 1);
}

TEST(Flow, ConventionalRedesignMeetsMargin) {
  const FlowResult& r = shared_flow();
  EXPECT_TRUE(r.perturbed_planner.converged);
  EXPECT_LE(r.worst_ir_conventional, 70e-3 * 1.001);
}

TEST(Flow, PredictionQualityIsReasonable) {
  const FlowResult& r = shared_flow();
  // Thresholds are deliberately loose: this is a ~600-node grid with a
  // deliberately small model; paper-scale quality is checked by the benches.
  EXPECT_GT(r.width_r2, 0.35);
  EXPECT_GT(r.width_pearson, 0.6);
  EXPECT_LT(r.width_mse_pct, 70.0);
}

TEST(Flow, DlIrDropIsNearConventional) {
  const FlowResult& r = shared_flow();
  // Paper Table III: predictions land within a few mV of conventional.
  EXPECT_NEAR(r.worst_ir_dl, r.worst_ir_conventional,
              0.35 * r.worst_ir_conventional);
}

TEST(Flow, TimesArePositiveAndComparable) {
  const FlowResult& r = shared_flow();
  EXPECT_GT(r.conventional_seconds, 0.0);
  EXPECT_GT(r.conventional_full_seconds, 0.0);
  EXPECT_GT(r.dl_seconds, 0.0);
  EXPECT_GT(r.speedup(), 0.0);
  EXPECT_GT(r.full_speedup(), 0.0);
}

TEST(Flow, ComparisonArraysAligned) {
  const FlowResult& r = shared_flow();
  EXPECT_EQ(r.golden_widths.size(), r.predicted_widths.size());
  EXPECT_EQ(static_cast<Index>(r.golden_widths.size()), r.interconnects);
}

TEST(Flow, TrainingHappensOncePerLayer) {
  const FlowResult& r = shared_flow();
  EXPECT_EQ(r.training.layers.size(), 3u);
  EXPECT_GT(r.ir_correction, 0.0);
  EXPECT_LE(r.ir_correction, 1.5);
}

TEST(Flow, DefaultPerturbationIsLoadsOnly) {
  // §V-A of the paper: the headline experiments modify current loads.
  const FlowOptions defaults;
  EXPECT_EQ(defaults.perturbation, grid::PerturbationKind::kCurrentWorkloads);
  EXPECT_DOUBLE_EQ(defaults.gamma, 0.10);
}

TEST(Flow, SpeedupAccessorsConsistent) {
  const FlowResult& r = shared_flow();
  EXPECT_NEAR(r.speedup(), r.conventional_seconds / r.dl_seconds, 1e-12);
  EXPECT_NEAR(r.full_speedup(),
              r.conventional_full_seconds / r.dl_seconds, 1e-12);
}

TEST(Flow, LargerGammaDegradesAccuracy) {
  FlowOptions small = fast_flow_options();
  small.gamma = 0.05;
  FlowOptions large = fast_flow_options();
  large.gamma = 0.30;
  const FlowResult a = run_flow("ibmpg1", small);
  const FlowResult b = run_flow("ibmpg1", large);
  // Fig. 9's trend: more perturbation, more width-prediction error.
  EXPECT_LE(a.width_mse_pct, b.width_mse_pct * 1.2);
}

}  // namespace
}  // namespace ppdl::core
