// Process-level chaos suite for the campaign engine (`ctest -L campaign`):
// always-failing scenarios are retried then quarantined without failing the
// campaign; worker kills and supervisor kills followed by --resume complete
// the campaign with deterministic report sections byte-identical to an
// uninterrupted run; truncated checkpoints are discarded, not trusted; and
// the deterministic sections are invariant under PPDL_THREADS.
//
// The CLI path comes in through the PPDL_CAMPAIGN_BIN compile definition
// (see tests/CMakeLists.txt), so this binary only builds when examples do.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>

#include <csignal>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "campaign/report.hpp"
#include "campaign/supervisor.hpp"
#include "common/obs_report.hpp"
#include "common/rng.hpp"

namespace ppdl::campaign {
namespace {

std::string tmp_dir(const std::string& name) {
  const std::string dir = std::string(::testing::TempDir()) + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// The report sections the determinism contract covers, concatenated.
std::string deterministic_sections(const std::string& report_json) {
  const std::string info = obs::extract_json_section(report_json, "info");
  const std::string metrics =
      obs::extract_json_section(report_json, "metrics");
  const std::string scenarios =
      obs::extract_json_section(report_json, "scenarios");
  EXPECT_FALSE(info.empty());
  EXPECT_FALSE(metrics.empty());
  EXPECT_FALSE(scenarios.empty());
  return info + "\n" + metrics + "\n" + scenarios;
}

Index counter(const CampaignReport& report, const std::string& name) {
  const auto it = report.counters.find(name);
  return it == report.counters.end() ? 0 : it->second;
}

Index exec_counter(const CampaignReport& report, const std::string& name) {
  const auto it = report.execution_counters.find(name);
  return it == report.execution_counters.end() ? 0 : it->second;
}

/// A small mixed matrix: three healthy scenarios plus one deterministic
/// always-failing one (the open-via cluster is a fatal grid defect).
CampaignConfig chaos_config(const std::string& dir) {
  CampaignConfig config;
  config.matrix.families = {"ibmpg1"};
  config.matrix.scales = {0.02};
  config.matrix.floorplan_seeds = {1};
  config.matrix.perturbations = {PerturbKind::kNone,
                                 PerturbKind::kCurrentWorkloads,
                                 PerturbKind::kFaultDanglingPad,
                                 PerturbKind::kFaultZeroCondVias};
  config.matrix.modes = {AnalysisMode::kIrStatic};
  config.dir = dir;
  config.name = "chaos";
  config.shards = 2;
  config.max_attempts = 3;
  // Keep retry waits negligible so the suite stays fast.
  config.backoff_initial_seconds = 0.001;
  config.backoff_max_seconds = 0.01;
  return config;
}

// --- CLI process control ---------------------------------------------------

std::vector<std::string> cli_args(const std::string& dir) {
  return {PPDL_CAMPAIGN_BIN,
          "--families=ibmpg1",
          "--scales=0.02",
          "--seeds=1",
          "--perturbs=none,loads,fault-dangling-pad,fault-open-vias",
          "--modes=ir",
          "--shards=2",
          "--max-attempts=3",
          "--name=chaos",
          "--dir=" + dir};
}

pid_t spawn_cli(const std::vector<std::string>& args) {
  const pid_t pid = fork();
  if (pid == 0) {
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (const std::string& a : args) {
      argv.push_back(const_cast<char*>(a.c_str()));
    }
    argv.push_back(nullptr);
    execv(argv[0], argv.data());
    _exit(127);
  }
  return pid;
}

/// Reaps `pid` with a wall-clock guard so a hung supervisor fails the test
/// instead of hanging ctest. Returns the raw waitpid status.
int await_exit(pid_t pid, Real timeout_seconds = 180.0) {
  const auto start = std::chrono::steady_clock::now();
  int status = 0;
  for (;;) {
    const pid_t r = waitpid(pid, &status, WNOHANG);
    if (r == pid) {
      return status;
    }
    const std::chrono::duration<Real> elapsed =
        std::chrono::steady_clock::now() - start;
    if (elapsed.count() > timeout_seconds) {
      kill(pid, SIGKILL);
      waitpid(pid, &status, 0);
      ADD_FAILURE() << "process " << pid << " exceeded " << timeout_seconds
                    << "s; killed";
      return status;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

int run_cli(const std::vector<std::string>& args) {
  const int status = await_exit(spawn_cli(args));
  return WIFEXITED(status) ? WEXITSTATUS(status) : -WTERMSIG(status);
}

/// Finds a live `--worker` child of `supervisor` by scanning /proc.
pid_t find_worker_child(pid_t supervisor) {
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator("/proc", ec)) {
    const std::string name = entry.path().filename().string();
    if (name.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    std::ifstream stat(entry.path() / "stat");
    pid_t pid = 0;
    pid_t ppid = 0;
    std::string comm;
    std::string state;
    if (!(stat >> pid >> comm >> state >> ppid) || ppid != supervisor) {
      continue;
    }
    const std::string cmdline = slurp((entry.path() / "cmdline").string());
    if (cmdline.find("--worker") != std::string::npos) {
      return pid;
    }
  }
  return -1;
}

// --- in-process policy tests -----------------------------------------------

TEST(CampaignChaos, AlwaysFailingScenarioIsRetriedThenQuarantined) {
  const CampaignConfig config = chaos_config(tmp_dir("chaos-inproc"));
  const CampaignReport report = run_campaign(config);  // must not throw

  EXPECT_EQ(counter(report, "scenarios"), 4);
  EXPECT_EQ(counter(report, "pass"), 3);
  EXPECT_EQ(counter(report, "fail"), 0);
  EXPECT_EQ(counter(report, "quarantined"), 1);
  // Exactly max_attempts attempts: max_attempts − 1 retries, then
  // quarantine. The healthy scenarios contribute no retries.
  EXPECT_EQ(exec_counter(report, "campaign.retries"),
            config.max_attempts - 1);
  EXPECT_EQ(exec_counter(report, "campaign.quarantines"), 1);

  const auto it =
      report.scenarios.find("ibmpg1/s0.02/f1/fault-open-vias/ir");
  ASSERT_NE(it, report.scenarios.end());
  EXPECT_EQ(it->second.status, ScenarioStatus::kQuarantined);
  EXPECT_NE(it->second.error.find("non-positive-conductance"),
            std::string::npos)
      << "last error not preserved: '" << it->second.error << "'";

  // The benign dangling-pad scenario passes, with the defect surfaced.
  const auto benign =
      report.scenarios.find("ibmpg1/s0.02/f1/fault-dangling-pad/ir");
  ASSERT_NE(benign, report.scenarios.end());
  EXPECT_EQ(benign->second.status, ScenarioStatus::kPass);
  EXPECT_NE(benign->second.validation.find("dangling-pad"),
            std::string::npos);
}

TEST(CampaignChaos, SubprocessShardsMatchInProcessBitForBit) {
  CampaignConfig in_process = chaos_config(tmp_dir("chaos-ref"));
  const CampaignReport ref = run_campaign(in_process);

  CampaignConfig isolated = chaos_config(tmp_dir("chaos-subproc"));
  isolated.worker_command = {PPDL_CAMPAIGN_BIN};
  const CampaignReport sub = run_campaign(isolated);

  EXPECT_EQ(deterministic_sections(render_campaign_report(sub)),
            deterministic_sections(render_campaign_report(ref)));
}

TEST(CampaignChaos, TruncatedCheckpointIsDiscardedAndCampaignCompletes) {
  CampaignConfig config = chaos_config(tmp_dir("chaos-truncated"));
  const CampaignReport first = run_campaign(config);

  // Damage the supervisor checkpoint, then resume: the checkpoint must be
  // rejected by verification and rebuilt, never half-trusted.
  const std::string ckpt = campaign_checkpoint_path(config.dir);
  const std::string bytes = slurp(ckpt);
  ASSERT_GT(bytes.size(), 8u);
  {
    // ppdl-lint: allow(raw-file-write) -- plants a deliberately truncated checkpoint to exercise resume recovery
    std::ofstream out(ckpt, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }

  config.resume = true;
  const CampaignReport resumed = run_campaign(config);
  EXPECT_GE(exec_counter(resumed, "campaign.resume_discarded"), 1);
  EXPECT_EQ(deterministic_sections(render_campaign_report(resumed)),
            deterministic_sections(render_campaign_report(first)));
}

// --- CLI chaos tests -------------------------------------------------------

TEST(CampaignChaos, SupervisorKillThenResumeIsBitIdenticalToCleanRun) {
  // Reference: one uninterrupted CLI campaign.
  const std::string ref_dir = tmp_dir("chaos-cli-ref");
  ASSERT_EQ(run_cli(cli_args(ref_dir)), 0);
  const std::string ref =
      deterministic_sections(slurp(ref_dir + "/campaign_report.json"));

  // Chaos: SIGKILL the supervisor at a random instant, then --resume.
  Rng rng = Rng::stream(0xc7a05, 2026);
  const std::string dir = tmp_dir("chaos-cli-kill");
  const pid_t pid = spawn_cli(cli_args(dir));
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(rng.uniform() * 400.0)));
  kill(pid, SIGKILL);
  await_exit(pid);

  std::vector<std::string> resume = cli_args(dir);
  resume.push_back("--resume");
  ASSERT_EQ(run_cli(resume), 0);
  EXPECT_EQ(deterministic_sections(slurp(dir + "/campaign_report.json")),
            ref);
}

TEST(CampaignChaos, WorkerKillMidFlightStillCompletesTheCampaign) {
  const std::string dir = tmp_dir("chaos-cli-worker-kill");
  const pid_t supervisor = spawn_cli(cli_args(dir));

  // Hunt for a worker child and SIGKILL the first one that appears. On a
  // fast box the campaign may finish before we catch one — the assertion
  // below holds either way; the kill makes it a crash-recovery test.
  bool killed = false;
  for (int probe = 0; probe < 400 && !killed; ++probe) {
    const pid_t worker = find_worker_child(supervisor);
    if (worker > 0) {
      killed = kill(worker, SIGKILL) == 0;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  const int status = await_exit(supervisor);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 0);

  const std::string json = slurp(dir + "/campaign_report.json");
  // Same verdicts as any other run of this matrix: the kill cost retries
  // (execution evidence), never verdicts.
  const std::string ref_dir = tmp_dir("chaos-cli-worker-ref");
  ASSERT_EQ(run_cli(cli_args(ref_dir)), 0);
  EXPECT_EQ(deterministic_sections(json),
            deterministic_sections(
                slurp(ref_dir + "/campaign_report.json")));
}

TEST(CampaignChaos, DeterministicSectionsAreThreadCountInvariant) {
  std::string sections[3];
  const char* thread_counts[3] = {"1", "2", "8"};
  for (int i = 0; i < 3; ++i) {
    const std::string dir =
        tmp_dir(std::string("chaos-cli-threads-") + thread_counts[i]);
    setenv("PPDL_THREADS", thread_counts[i], 1);
    const int code = run_cli(cli_args(dir));
    unsetenv("PPDL_THREADS");
    ASSERT_EQ(code, 0) << "PPDL_THREADS=" << thread_counts[i];
    sections[i] =
        deterministic_sections(slurp(dir + "/campaign_report.json"));
  }
  EXPECT_EQ(sections[0], sections[1]);
  EXPECT_EQ(sections[0], sections[2]);
}

}  // namespace
}  // namespace ppdl::campaign
