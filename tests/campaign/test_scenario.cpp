// Scenario execution: bit-exact determinism across repeated runs, failure
// capture (a broken scenario is a recorded outcome, never an escaped
// exception), benign-defect tolerance, and the outcome artifact codec.
#include <gtest/gtest.h>

#include <string>

#include "campaign/scenario.hpp"
#include "common/artifact_io.hpp"

namespace ppdl::campaign {
namespace {

Scenario scenario_for(PerturbKind perturbation, AnalysisMode mode) {
  Scenario s;
  s.family = "ibmpg1";
  s.scale = 0.02;
  s.floorplan_seed = 1;
  s.perturbation = perturbation;
  s.mode = mode;
  s.id = scenario_id(s.family, s.scale, s.floorplan_seed, s.perturbation,
                     s.mode);
  s.rng_key = fnv1a64(s.id);
  return s;
}

TEST(CampaignScenario, RunIsBitDeterministic) {
  const ScenarioConfig config;
  const Scenario s =
      scenario_for(PerturbKind::kCurrentWorkloads, AnalysisMode::kIrStatic);
  const ScenarioOutcome a = run_scenario(config, s);
  const ScenarioOutcome b = run_scenario(config, s);
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok) << b.error;
  ASSERT_EQ(a.values.size(), b.values.size());
  for (const auto& [name, value] : a.values) {
    const auto it = b.values.find(name);
    ASSERT_NE(it, b.values.end()) << name;
    EXPECT_EQ(value, it->second) << name;  // bit-exact, not approximate
  }
  EXPECT_EQ(a.validation, b.validation);
  EXPECT_GT(a.values.at("worst_ir_drop_mv"), 0.0);
  EXPECT_GT(a.values.at("nodes"), 0.0);
}

TEST(CampaignScenario, SeedChangesTheElectricalPerturbation) {
  ScenarioConfig config;
  const Scenario s =
      scenario_for(PerturbKind::kCurrentWorkloads, AnalysisMode::kIrStatic);
  const ScenarioOutcome a = run_scenario(config, s);
  config.campaign_seed = 4242;
  const ScenarioOutcome b = run_scenario(config, s);
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_NE(a.values.at("worst_ir_drop_mv"), b.values.at("worst_ir_drop_mv"));
}

TEST(CampaignScenario, FatalFaultIsACapturedDeterministicFailure) {
  const ScenarioConfig config;
  const Scenario s = scenario_for(PerturbKind::kFaultZeroCondVias,
                                  AnalysisMode::kIrStatic);
  const ScenarioOutcome a = run_scenario(config, s);  // must not throw
  const ScenarioOutcome b = run_scenario(config, s);
  EXPECT_FALSE(a.ok);
  EXPECT_FALSE(a.error.empty());
  EXPECT_EQ(a.error, b.error);  // deterministic failure text
}

TEST(CampaignScenario, BenignDefectPassesWithValidationDigest) {
  const ScenarioConfig config;
  const Scenario s = scenario_for(PerturbKind::kFaultDanglingPad,
                                  AnalysisMode::kIrStatic);
  const ScenarioOutcome out = run_scenario(config, s);
  EXPECT_TRUE(out.ok) << out.error;
  EXPECT_NE(out.validation.find("dangling-pad"), std::string::npos)
      << "validation digest: '" << out.validation << "'";
}

TEST(CampaignScenario, EveryAnalysisModeProducesItsHeadlineMetric) {
  const ScenarioConfig config;
  const struct {
    AnalysisMode mode;
    const char* metric;
  } cases[] = {
      {AnalysisMode::kIrStatic, "worst_ir_drop_mv"},
      {AnalysisMode::kVectorless, "worst_ir_bound_mv"},
      {AnalysisMode::kDualRail, "worst_noise_mv"},
      {AnalysisMode::kEmMttf, "min_mttf_hours"},
  };
  for (const auto& c : cases) {
    const ScenarioOutcome out =
        run_scenario(config, scenario_for(PerturbKind::kNone, c.mode));
    ASSERT_TRUE(out.ok) << to_string(c.mode) << ": " << out.error;
    ASSERT_TRUE(out.values.count(c.metric))
        << to_string(c.mode) << " missing " << c.metric;
    EXPECT_GT(out.values.at(c.metric), 0.0) << c.metric;
  }
}

TEST(CampaignScenario, OutcomeArtifactRoundTrips) {
  const ScenarioConfig config;
  const Scenario s = scenario_for(PerturbKind::kFaultZeroCondVias,
                                  AnalysisMode::kIrStatic);
  const ScenarioOutcome out = run_scenario(config, s);
  const std::string path =
      std::string(::testing::TempDir()) + "outcome-roundtrip.ppdl";
  save_scenario_outcome(path, out);

  const ScenarioOutcome back = load_scenario_outcome(path);
  EXPECT_EQ(back.scenario.id, out.scenario.id);
  EXPECT_EQ(back.scenario.rng_key, out.scenario.rng_key);
  EXPECT_EQ(back.ok, out.ok);
  EXPECT_EQ(back.error, out.error);
  EXPECT_EQ(back.validation, out.validation);
  EXPECT_EQ(back.values, out.values);  // hexfloat codec: bit-exact
}

TEST(CampaignScenario, ResultPathIsScopedToTheCampaignDir) {
  const Scenario s =
      scenario_for(PerturbKind::kNone, AnalysisMode::kIrStatic);
  const std::string path = scenario_result_path("/tmp/camp", s);
  EXPECT_EQ(path.rfind("/tmp/camp/", 0), 0u);
  EXPECT_NE(path.find(scenario_file_stem(s)), std::string::npos);
}

}  // namespace
}  // namespace ppdl::campaign
