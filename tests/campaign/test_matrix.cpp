// Scenario matrix: deterministic expansion, stable ids, id-derived rng
// keys, the manifest line codec, and the filesystem-safe artifact stem.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "campaign/matrix.hpp"
#include "common/artifact_io.hpp"

namespace ppdl::campaign {
namespace {

CampaignMatrix two_by_two() {
  CampaignMatrix m;
  m.families = {"ibmpg1", "ibmpg2"};
  m.scales = {0.02, 0.05};
  m.floorplan_seeds = {1, 7};
  m.perturbations = {PerturbKind::kNone, PerturbKind::kCurrentWorkloads};
  m.modes = {AnalysisMode::kIrStatic, AnalysisMode::kEmMttf};
  return m;
}

TEST(CampaignMatrix, ExpandsFullCrossProductInAxisMajorOrder) {
  const std::vector<Scenario> scenarios = expand_matrix(two_by_two());
  ASSERT_EQ(scenarios.size(), 32u);
  // Families outermost, modes innermost.
  EXPECT_EQ(scenarios.front().id, "ibmpg1/s0.02/f1/none/ir");
  EXPECT_EQ(scenarios[1].id, "ibmpg1/s0.02/f1/none/em-mttf");
  EXPECT_EQ(scenarios[2].id, "ibmpg1/s0.02/f1/loads/ir");
  EXPECT_EQ(scenarios.back().id, "ibmpg2/s0.05/f7/loads/em-mttf");

  std::set<std::string> ids;
  for (const Scenario& s : scenarios) {
    EXPECT_TRUE(ids.insert(s.id).second) << "duplicate id " << s.id;
    EXPECT_EQ(s.id, scenario_id(s.family, s.scale, s.floorplan_seed,
                                s.perturbation, s.mode));
    EXPECT_EQ(s.rng_key, fnv1a64(s.id));
  }
}

TEST(CampaignMatrix, ExpansionIsDeterministic) {
  const std::vector<Scenario> a = expand_matrix(two_by_two());
  const std::vector<Scenario> b = expand_matrix(two_by_two());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].rng_key, b[i].rng_key);
  }
}

TEST(CampaignMatrix, EmptyAxisThrows) {
  CampaignMatrix m = two_by_two();
  m.modes.clear();
  EXPECT_THROW(expand_matrix(m), CampaignError);
}

TEST(CampaignMatrix, DuplicateAxisEntryThrows) {
  CampaignMatrix m = two_by_two();
  m.families = {"ibmpg1", "ibmpg1"};
  EXPECT_THROW(expand_matrix(m), CampaignError);
}

TEST(CampaignMatrix, TokensRoundTripThroughParsers) {
  for (const AnalysisMode mode :
       {AnalysisMode::kIrStatic, AnalysisMode::kVectorless,
        AnalysisMode::kDualRail, AnalysisMode::kEmMttf}) {
    EXPECT_EQ(parse_analysis_mode(to_string(mode)), mode);
  }
  for (const PerturbKind kind :
       {PerturbKind::kNone, PerturbKind::kCurrentWorkloads,
        PerturbKind::kNodeVoltages, PerturbKind::kBoth,
        PerturbKind::kFaultDanglingPad, PerturbKind::kFaultZeroCondVias}) {
    EXPECT_EQ(parse_perturb_kind(to_string(kind)), kind);
  }
  EXPECT_THROW(parse_analysis_mode("transient"), CampaignError);
  EXPECT_THROW(parse_perturb_kind("meteor-strike"), CampaignError);
}

TEST(CampaignMatrix, ScenarioLineCodecRoundTrips) {
  for (const Scenario& s : expand_matrix(two_by_two())) {
    const Scenario back = decode_scenario(encode_scenario(s));
    EXPECT_EQ(back.id, s.id);
    EXPECT_EQ(back.family, s.family);
    EXPECT_EQ(back.scale, s.scale);
    EXPECT_EQ(back.floorplan_seed, s.floorplan_seed);
    EXPECT_EQ(back.perturbation, s.perturbation);
    EXPECT_EQ(back.mode, s.mode);
    EXPECT_EQ(back.rng_key, s.rng_key);
  }
}

TEST(CampaignMatrix, DecodeRejectsDamagedLines) {
  const std::string good = encode_scenario(expand_matrix(two_by_two())[0]);
  EXPECT_THROW(decode_scenario(""), CampaignError);
  EXPECT_THROW(decode_scenario("ibmpg1"), CampaignError);
  EXPECT_THROW(decode_scenario(good + " trailing"), CampaignError);
  EXPECT_THROW(decode_scenario("ibmpg1 not-a-number 1 none ir"),
               CampaignError);
  EXPECT_THROW(decode_scenario("ibmpg1 0x1p-5 1 bogus ir"), CampaignError);
}

TEST(CampaignMatrix, FileStemIsFilesystemSafeAndCollisionFree) {
  const std::vector<Scenario> scenarios = expand_matrix(two_by_two());
  std::set<std::string> stems;
  for (const Scenario& s : scenarios) {
    const std::string stem = scenario_file_stem(s);
    EXPECT_EQ(stem.find_first_not_of("ABCDEFGHIJKLMNOPQRSTUVWXYZ"
                                     "abcdefghijklmnopqrstuvwxyz"
                                     "0123456789._-"),
              std::string::npos)
        << "unsafe byte in stem " << stem;
    EXPECT_EQ(stem.find('/'), std::string::npos);
    EXPECT_TRUE(stems.insert(stem).second) << "stem collision " << stem;
  }
}

}  // namespace
}  // namespace ppdl::campaign
