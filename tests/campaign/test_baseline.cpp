// Recorded baselines: --write-baseline snapshots passing values, a later
// campaign gated with --baseline reports per-metric deltas, and an
// out-of-tolerance value turns a pass into a fail (the one verdict that
// fails a campaign).
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <string>

#include "campaign/report.hpp"
#include "campaign/supervisor.hpp"

namespace ppdl::campaign {
namespace {

std::string tmp_dir(const std::string& name) {
  const std::string dir = std::string(::testing::TempDir()) + name;
  std::filesystem::remove_all(dir);
  return dir;
}

CampaignConfig one_scenario_config(const std::string& dir) {
  CampaignConfig config;
  config.matrix.perturbations = {PerturbKind::kCurrentWorkloads};
  config.dir = dir;
  config.shards = 1;
  return config;
}

TEST(CampaignBaselineGate, ToleranceIsRelativeAndNanAware) {
  EXPECT_TRUE(within_baseline_tolerance(100.0, 100.0, 1e-9));
  EXPECT_TRUE(within_baseline_tolerance(100.0 + 1e-8, 100.0, 1e-9));
  EXPECT_FALSE(within_baseline_tolerance(100.1, 100.0, 1e-9));
  const Real nan = std::nan("");
  EXPECT_TRUE(within_baseline_tolerance(nan, nan, 1e-9));
  EXPECT_FALSE(within_baseline_tolerance(nan, 100.0, 1e-9));
  EXPECT_FALSE(within_baseline_tolerance(100.0, nan, 1e-9));
}

TEST(CampaignBaselineGate, BaselineArtifactRoundTrips) {
  CampaignBaseline baseline;
  baseline["a/b"]["worst_ir_drop_mv"] = 171.25;
  baseline["a/b"]["nodes"] = 663.0;
  baseline["c/d"]["min_mttf_hours"] = 1.5e6;
  const std::string path =
      std::string(::testing::TempDir()) + "baseline-roundtrip.ppdl";
  save_campaign_baseline(path, baseline);
  EXPECT_EQ(load_campaign_baseline(path), baseline);  // hexfloat: bit-exact
}

TEST(CampaignBaselineGate, RecordedBaselineGatesALaterCampaign) {
  const std::string dir = tmp_dir("baseline-gate");
  const std::string baseline_path = dir + "-baseline.ppdl";

  // First campaign records the baseline from its passing scenario.
  CampaignConfig record = one_scenario_config(dir);
  record.write_baseline_path = baseline_path;
  const CampaignReport first = run_campaign(record);
  ASSERT_EQ(first.counters.at("pass"), 1);

  // Second campaign gated against it: same seed → zero deltas, pass.
  CampaignConfig gated = one_scenario_config(tmp_dir("baseline-gate2"));
  gated.baseline_path = baseline_path;
  const CampaignReport same = run_campaign(gated);
  EXPECT_EQ(same.counters.at("pass"), 1);
  EXPECT_EQ(same.counters.at("fail"), 0);
  const ScenarioReportEntry& entry = same.scenarios.begin()->second;
  ASSERT_FALSE(entry.baseline_delta.empty());
  for (const auto& [name, delta] : entry.baseline_delta) {
    EXPECT_EQ(delta, 0.0) << name;
  }

  // Different campaign seed → different perturbation → metric drift →
  // the gate flips the verdict to fail (never to quarantine).
  CampaignConfig drifted = one_scenario_config(tmp_dir("baseline-gate3"));
  drifted.baseline_path = baseline_path;
  drifted.matrix.campaign_seed = 4242;
  const CampaignReport regressed = run_campaign(drifted);
  EXPECT_EQ(regressed.counters.at("fail"), 1);
  EXPECT_EQ(regressed.counters.at("quarantined"), 0);
  const ScenarioReportEntry& bad = regressed.scenarios.begin()->second;
  EXPECT_EQ(bad.status, ScenarioStatus::kFail);
  EXPECT_FALSE(bad.error.empty());
  bool some_delta_nonzero = false;
  for (const auto& [name, delta] : bad.baseline_delta) {
    some_delta_nonzero = some_delta_nonzero || delta != 0.0;
  }
  EXPECT_TRUE(some_delta_nonzero);
}

}  // namespace
}  // namespace ppdl::campaign
