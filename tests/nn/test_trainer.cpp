#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "nn/trainer.hpp"

namespace ppdl::nn {
namespace {

/// y = 2x₀ − x₁ + 0.5, with mild noise.
void make_linear_data(Index rows, Matrix& x, Matrix& y, U64 seed) {
  Rng rng(seed);
  x = Matrix(rows, 2);
  y = Matrix(rows, 1);
  for (Index r = 0; r < rows; ++r) {
    const Real a = rng.uniform(-1.0, 1.0);
    const Real b = rng.uniform(-1.0, 1.0);
    x(r, 0) = a;
    x(r, 1) = b;
    y(r, 0) = 2.0 * a - b + 0.5 + 0.01 * rng.normal();
  }
}

TrainOptions fast_options() {
  TrainOptions o;
  o.epochs = 40;
  o.batch_size = 32;
  o.learning_rate = 5e-3;
  o.validation_fraction = 0.2;
  o.early_stopping_patience = 0;
  return o;
}

TEST(Trainer, LearnsLinearFunction) {
  Matrix x;
  Matrix y;
  make_linear_data(400, x, y, 1);
  Rng rng(2);
  MlpConfig c;
  c.inputs = 2;
  c.hidden = {16, 16};
  Mlp mlp(c, rng);
  const TrainHistory h = train(mlp, x, y, fast_options());
  EXPECT_LT(h.train_loss.back(), 0.01);
  EXPECT_LT(h.val_loss.back(), 0.02);
}

TEST(Trainer, LossDecreasesOverTraining) {
  Matrix x;
  Matrix y;
  make_linear_data(300, x, y, 3);
  Rng rng(4);
  MlpConfig c;
  c.inputs = 2;
  c.hidden = {8};
  Mlp mlp(c, rng);
  const TrainHistory h = train(mlp, x, y, fast_options());
  EXPECT_LT(h.train_loss.back(), 0.5 * h.train_loss.front());
}

TEST(Trainer, DeterministicForSeeds) {
  Matrix x;
  Matrix y;
  make_linear_data(200, x, y, 5);
  const auto run = [&] {
    Rng rng(6);
    MlpConfig c;
    c.inputs = 2;
    c.hidden = {8};
    Mlp mlp(c, rng);
    TrainOptions o = fast_options();
    o.epochs = 5;
    return train(mlp, x, y, o).train_loss.back();
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(Trainer, EarlyStoppingTriggers) {
  Matrix x;
  Matrix y;
  make_linear_data(200, x, y, 7);
  Rng rng(8);
  MlpConfig c;
  c.inputs = 2;
  c.hidden = {32, 32};
  Mlp mlp(c, rng);
  TrainOptions o = fast_options();
  o.epochs = 500;
  o.early_stopping_patience = 3;
  const TrainHistory h = train(mlp, x, y, o);
  EXPECT_TRUE(h.early_stopped);
  EXPECT_LT(h.epochs_run, 500);
  EXPECT_GE(h.best_val_loss, 0.0);
}

TEST(Trainer, NoValidationWhenFractionZero) {
  Matrix x;
  Matrix y;
  make_linear_data(100, x, y, 9);
  Rng rng(10);
  MlpConfig c;
  c.inputs = 2;
  c.hidden = {4};
  Mlp mlp(c, rng);
  TrainOptions o = fast_options();
  o.validation_fraction = 0.0;
  o.epochs = 3;
  const TrainHistory h = train(mlp, x, y, o);
  for (const Real v : h.val_loss) {
    EXPECT_DOUBLE_EQ(v, -1.0);
  }
  EXPECT_FALSE(h.early_stopped);
}

TEST(Trainer, EpochCallbackFires) {
  Matrix x;
  Matrix y;
  make_linear_data(60, x, y, 11);
  Rng rng(12);
  MlpConfig c;
  c.inputs = 2;
  c.hidden = {4};
  Mlp mlp(c, rng);
  TrainOptions o = fast_options();
  o.epochs = 4;
  Index calls = 0;
  o.on_epoch = [&](Index epoch, Real train_loss, Real val_loss) {
    ++calls;
    EXPECT_GT(epoch, 0);
    EXPECT_GE(train_loss, 0.0);
    EXPECT_GE(val_loss, 0.0);
  };
  train(mlp, x, y, o);
  EXPECT_EQ(calls, 4);
}

TEST(Trainer, RejectsBadInputs) {
  Rng rng(13);
  MlpConfig c;
  c.inputs = 2;
  c.hidden = {4};
  Mlp mlp(c, rng);
  Matrix x(10, 2);
  Matrix y_bad_rows(9, 1);
  EXPECT_THROW(train(mlp, x, y_bad_rows, fast_options()), ContractViolation);
  Matrix y(10, 1);
  TrainOptions o = fast_options();
  o.epochs = 0;
  EXPECT_THROW(train(mlp, x, y, o), ContractViolation);
  TrainOptions o2 = fast_options();
  o2.validation_fraction = 1.0;
  EXPECT_THROW(train(mlp, x, y, o2), ContractViolation);
}

TEST(Trainer, SliceRowsAndGatherRows) {
  Matrix m(4, 2);
  for (Index r = 0; r < 4; ++r) {
    m(r, 0) = static_cast<Real>(r);
    m(r, 1) = static_cast<Real>(10 * r);
  }
  const Matrix s = slice_rows(m, 1, 3);
  EXPECT_EQ(s.rows(), 2);
  EXPECT_DOUBLE_EQ(s(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(s(1, 1), 20.0);

  const Matrix g = gather_rows(m, {3, 0});
  EXPECT_DOUBLE_EQ(g(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(g(1, 0), 0.0);

  EXPECT_THROW(slice_rows(m, 3, 2), ContractViolation);
  EXPECT_THROW(gather_rows(m, {5}), ContractViolation);
}

TEST(Trainer, MultiTargetRegression) {
  // Two simultaneous targets: y0 = x0 + x1, y1 = x0 − x1.
  Rng data_rng(14);
  Matrix x(300, 2);
  Matrix y(300, 2);
  for (Index r = 0; r < 300; ++r) {
    const Real a = data_rng.uniform(-1.0, 1.0);
    const Real b = data_rng.uniform(-1.0, 1.0);
    x(r, 0) = a;
    x(r, 1) = b;
    y(r, 0) = a + b;
    y(r, 1) = a - b;
  }
  Rng rng(15);
  MlpConfig c;
  c.inputs = 2;
  c.outputs = 2;
  c.hidden = {16};
  Mlp mlp(c, rng);
  const TrainHistory h = train(mlp, x, y, fast_options());
  EXPECT_LT(h.train_loss.back(), 0.02);
}

}  // namespace
}  // namespace ppdl::nn
