#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "nn/layer.hpp"
#include "nn/loss.hpp"

namespace ppdl::nn {
namespace {

Matrix random_matrix(Index rows, Index cols, Rng& rng) {
  Matrix m(rows, cols);
  for (Real& v : m.data()) {
    v = rng.normal();
  }
  return m;
}

TEST(Layer, ShapesAndInit) {
  Rng rng(1);
  DenseLayer layer(3, 5, Activation::kRelu, rng);
  EXPECT_EQ(layer.in_features(), 3);
  EXPECT_EQ(layer.out_features(), 5);
  EXPECT_EQ(layer.parameter_count(), 3 * 5 + 5);
  // Bias starts at zero; weights are not all zero.
  for (const Real b : layer.bias().data()) {
    EXPECT_DOUBLE_EQ(b, 0.0);
  }
  Real wsum = 0.0;
  for (const Real w : layer.weights().data()) {
    wsum += std::abs(w);
  }
  EXPECT_GT(wsum, 0.0);
}

TEST(Layer, ForwardComputesAffinePlusActivation) {
  Rng rng(2);
  DenseLayer layer(2, 1, Activation::kIdentity, rng);
  layer.weights()(0, 0) = 2.0;
  layer.weights()(1, 0) = -1.0;
  layer.bias()(0, 0) = 0.5;
  Matrix x(1, 2);
  x(0, 0) = 3.0;
  x(0, 1) = 4.0;
  const Matrix y = layer.forward(x, false);
  EXPECT_DOUBLE_EQ(y(0, 0), 2.0 * 3.0 - 4.0 + 0.5);
}

TEST(Layer, ApplyMatchesForward) {
  Rng rng(3);
  DenseLayer layer(4, 3, Activation::kTanh, rng);
  const Matrix x = random_matrix(5, 4, rng);
  DenseLayer copy = layer;
  const Matrix a = copy.forward(x, false);
  const Matrix b = layer.apply(x);
  for (Index r = 0; r < a.rows(); ++r) {
    for (Index c = 0; c < a.cols(); ++c) {
      EXPECT_DOUBLE_EQ(a(r, c), b(r, c));
    }
  }
}

TEST(Layer, BackwardRequiresForwardCache) {
  Rng rng(4);
  DenseLayer layer(2, 2, Activation::kRelu, rng);
  Matrix grad(1, 2, 1.0);
  EXPECT_THROW(layer.backward(grad), ContractViolation);
  const Matrix x = random_matrix(1, 2, rng);
  layer.forward(x, true);
  EXPECT_NO_THROW(layer.backward(grad));
  // Cache consumed: a second backward must throw.
  EXPECT_THROW(layer.backward(grad), ContractViolation);
}

/// Full gradient check through a single layer + MSE loss.
class LayerGradient : public ::testing::TestWithParam<Activation> {};

TEST_P(LayerGradient, WeightsBiasAndInputGradientsMatchFiniteDifference) {
  const Activation act = GetParam();
  Rng rng(7);
  DenseLayer layer(3, 2, act, rng);
  const Matrix x = random_matrix(4, 3, rng);
  const Matrix target = random_matrix(4, 2, rng);

  const auto loss_of = [&](DenseLayer& l, const Matrix& input) {
    DenseLayer probe = l;
    const Matrix pred = probe.forward(input, false);
    return loss_value(pred, target, Loss::kMse);
  };

  // Analytical gradients.
  const Matrix pred = layer.forward(x, true);
  const Matrix dloss = loss_gradient(pred, target, Loss::kMse);
  const Matrix dx = layer.backward(dloss);

  const Real h = 1e-6;
  // Weight gradients.
  for (Index i = 0; i < 3; ++i) {
    for (Index j = 0; j < 2; ++j) {
      DenseLayer plus = layer;
      DenseLayer minus = layer;
      plus.weights()(i, j) += h;
      minus.weights()(i, j) -= h;
      const Real numeric = (loss_of(plus, x) - loss_of(minus, x)) / (2 * h);
      EXPECT_NEAR(layer.weight_grad()(i, j), numeric, 1e-4)
          << "dW(" << i << "," << j << ") " << to_string(act);
    }
  }
  // Bias gradients.
  for (Index j = 0; j < 2; ++j) {
    DenseLayer plus = layer;
    DenseLayer minus = layer;
    plus.bias()(0, j) += h;
    minus.bias()(0, j) -= h;
    const Real numeric = (loss_of(plus, x) - loss_of(minus, x)) / (2 * h);
    EXPECT_NEAR(layer.bias_grad()(0, j), numeric, 1e-4)
        << "db(" << j << ") " << to_string(act);
  }
  // Input gradients.
  for (Index r = 0; r < 4; ++r) {
    for (Index c = 0; c < 3; ++c) {
      Matrix plus = x;
      Matrix minus = x;
      plus(r, c) += h;
      minus(r, c) -= h;
      const Real numeric =
          (loss_of(layer, plus) - loss_of(layer, minus)) / (2 * h);
      EXPECT_NEAR(dx(r, c), numeric, 1e-4)
          << "dx(" << r << "," << c << ") " << to_string(act);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Activations, LayerGradient,
                         ::testing::Values(Activation::kIdentity,
                                           Activation::kTanh,
                                           Activation::kSigmoid,
                                           Activation::kLeakyRelu),
                         [](const auto& param_info) {
                           return to_string(param_info.param);
                         });

TEST(Layer, ShapeMismatchThrows) {
  Rng rng(5);
  DenseLayer layer(3, 2, Activation::kRelu, rng);
  const Matrix bad(1, 4);
  EXPECT_THROW(layer.forward(bad, false), ContractViolation);
}

}  // namespace
}  // namespace ppdl::nn
