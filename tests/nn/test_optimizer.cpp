#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "nn/optimizer.hpp"

namespace ppdl::nn {
namespace {

/// Minimize f(x) = Σ (x_i − t_i)² with an optimizer; gradient = 2(x − t).
std::vector<Real> minimize_quadratic(Optimizer& opt,
                                     const std::vector<Real>& target,
                                     Index steps) {
  std::vector<Real> x(target.size(), 0.0);
  std::vector<Real> grad(target.size(), 0.0);
  for (Index s = 0; s < steps; ++s) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      grad[i] = 2.0 * (x[i] - target[i]);
    }
    const std::vector<ParamSlot> slots{{std::span<Real>(x),
                                        std::span<const Real>(grad)}};
    opt.step(slots);
  }
  return x;
}

TEST(Sgd, ConvergesOnQuadratic) {
  SgdOptimizer opt(0.1);
  const std::vector<Real> target{1.0, -2.0, 3.0};
  const std::vector<Real> x = minimize_quadratic(opt, target, 200);
  for (std::size_t i = 0; i < target.size(); ++i) {
    EXPECT_NEAR(x[i], target[i], 1e-6);
  }
}

TEST(Momentum, ConvergesOnQuadratic) {
  MomentumOptimizer opt(0.05, 0.9);
  const std::vector<Real> target{0.5, 4.0};
  const std::vector<Real> x = minimize_quadratic(opt, target, 300);
  for (std::size_t i = 0; i < target.size(); ++i) {
    EXPECT_NEAR(x[i], target[i], 1e-4);
  }
}

TEST(Adam, ConvergesOnQuadratic) {
  AdamOptimizer opt(0.1);
  const std::vector<Real> target{-1.0, 2.5, 0.25};
  const std::vector<Real> x = minimize_quadratic(opt, target, 500);
  for (std::size_t i = 0; i < target.size(); ++i) {
    EXPECT_NEAR(x[i], target[i], 1e-3);
  }
}

TEST(Adam, FirstStepIsBiasCorrectlyScaled) {
  // With bias correction, the very first Adam step has magnitude ≈ lr
  // regardless of gradient scale.
  AdamOptimizer opt(0.01);
  std::vector<Real> x{0.0};
  const std::vector<Real> grad{1234.5};
  const std::vector<ParamSlot> slots{{std::span<Real>(x),
                                      std::span<const Real>(grad)}};
  opt.step(slots);
  EXPECT_NEAR(std::abs(x[0]), 0.01, 1e-6);
}

TEST(Adam, HandlesSparseZeroGradients) {
  AdamOptimizer opt(0.1);
  std::vector<Real> x{1.0};
  const std::vector<Real> zero{0.0};
  const std::vector<ParamSlot> slots{{std::span<Real>(x),
                                      std::span<const Real>(zero)}};
  for (int i = 0; i < 10; ++i) {
    opt.step(slots);
  }
  EXPECT_NEAR(x[0], 1.0, 1e-9);
}

TEST(Optimizer, SlotStructureChangeThrows) {
  AdamOptimizer opt(0.1);
  std::vector<Real> a{0.0};
  std::vector<Real> ga{1.0};
  const std::vector<ParamSlot> one{{std::span<Real>(a),
                                    std::span<const Real>(ga)}};
  opt.step(one);
  std::vector<Real> b{0.0, 0.0};
  std::vector<Real> gb{1.0, 1.0};
  const std::vector<ParamSlot> two{{std::span<Real>(a),
                                    std::span<const Real>(ga)},
                                   {std::span<Real>(b),
                                    std::span<const Real>(gb)}};
  EXPECT_THROW(opt.step(two), ContractViolation);
}

TEST(Optimizer, InvalidHyperparametersThrow) {
  EXPECT_THROW(SgdOptimizer{0.0}, ContractViolation);
  EXPECT_THROW(MomentumOptimizer(0.1, 1.0), ContractViolation);
  EXPECT_THROW(AdamOptimizer(0.1, 1.0), ContractViolation);
  EXPECT_THROW(AdamOptimizer(0.1, 0.9, 0.999, 0.0), ContractViolation);
}

TEST(Optimizer, FactoryMakesAllKinds) {
  EXPECT_STREQ(make_optimizer(OptimizerKind::kSgd, 0.1)->name(), "sgd");
  EXPECT_STREQ(make_optimizer(OptimizerKind::kMomentum, 0.1)->name(),
               "momentum");
  EXPECT_STREQ(make_optimizer(OptimizerKind::kAdam, 0.1)->name(), "adam");
}

TEST(Optimizer, MomentumFasterThanSgdOnIllConditioned) {
  // f(x, y) = x² + 25 y²: plain SGD zig-zags on the steep axis.
  const auto run = [](Optimizer& opt) {
    std::vector<Real> x{5.0, 5.0};
    std::vector<Real> grad(2);
    for (int s = 0; s < 120; ++s) {
      grad[0] = 2.0 * x[0];
      grad[1] = 50.0 * x[1];
      const std::vector<ParamSlot> slots{{std::span<Real>(x),
                                          std::span<const Real>(grad)}};
      opt.step(slots);
    }
    return x[0] * x[0] + 25.0 * x[1] * x[1];
  };
  SgdOptimizer sgd(0.02);
  MomentumOptimizer momentum(0.02, 0.9);
  const Real f_sgd = run(sgd);
  const Real f_momentum = run(momentum);
  EXPECT_LT(f_momentum, f_sgd);
}

}  // namespace
}  // namespace ppdl::nn
