#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "nn/activation.hpp"

namespace ppdl::nn {
namespace {

class ActivationNumerics : public ::testing::TestWithParam<Activation> {};

TEST_P(ActivationNumerics, DerivativeMatchesFiniteDifference) {
  const Activation a = GetParam();
  const Real xs[] = {-2.0, -0.5, 0.3, 1.7};
  const Real h = 1e-6;
  for (const Real x : xs) {
    const Real numeric =
        (activate(x + h, a) - activate(x - h, a)) / (2.0 * h);
    EXPECT_NEAR(activate_grad(x, a), numeric, 1e-5)
        << to_string(a) << " at x=" << x;
  }
}

TEST_P(ActivationNumerics, RoundTripsThroughNames) {
  const Activation a = GetParam();
  EXPECT_EQ(parse_activation(to_string(a)), a);
}

INSTANTIATE_TEST_SUITE_P(AllActivations, ActivationNumerics,
                         ::testing::Values(Activation::kIdentity,
                                           Activation::kRelu,
                                           Activation::kLeakyRelu,
                                           Activation::kTanh,
                                           Activation::kSigmoid),
                         [](const auto& param_info) {
                           return to_string(param_info.param);
                         });

TEST(Activation, ReluClampsNegatives) {
  EXPECT_DOUBLE_EQ(activate(-3.0, Activation::kRelu), 0.0);
  EXPECT_DOUBLE_EQ(activate(3.0, Activation::kRelu), 3.0);
}

TEST(Activation, LeakyReluKeepsSmallSlope) {
  EXPECT_DOUBLE_EQ(activate(-2.0, Activation::kLeakyRelu), -0.02);
  EXPECT_DOUBLE_EQ(activate_grad(-2.0, Activation::kLeakyRelu), 0.01);
}

TEST(Activation, SigmoidRangeAndCenter) {
  EXPECT_DOUBLE_EQ(activate(0.0, Activation::kSigmoid), 0.5);
  EXPECT_LT(activate(-10.0, Activation::kSigmoid), 0.01);
  EXPECT_GT(activate(10.0, Activation::kSigmoid), 0.99);
}

TEST(Activation, TanhIsOdd) {
  EXPECT_NEAR(activate(1.3, Activation::kTanh),
              -activate(-1.3, Activation::kTanh), 1e-12);
}

TEST(Activation, ApplyTransformsWholeMatrix) {
  Matrix m(2, 2);
  m(0, 0) = -1.0;
  m(0, 1) = 2.0;
  m(1, 0) = -3.0;
  m(1, 1) = 0.0;
  apply_activation(m, Activation::kRelu);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 0.0);
}

TEST(Activation, GradientMatrixShape) {
  Matrix z(3, 4, 0.5);
  const Matrix g = activation_gradient(z, Activation::kSigmoid);
  EXPECT_EQ(g.rows(), 3);
  EXPECT_EQ(g.cols(), 4);
}

TEST(Activation, UnknownNameThrows) {
  EXPECT_THROW(parse_activation("softmax"), ContractViolation);
}

}  // namespace
}  // namespace ppdl::nn
