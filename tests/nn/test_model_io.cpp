#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "nn/model_io.hpp"

namespace ppdl::nn {
namespace {

Mlp make_model(U64 seed) {
  Rng rng(seed);
  MlpConfig c;
  c.inputs = 3;
  c.outputs = 2;
  c.hidden = {5, 4};
  c.hidden_activation = Activation::kTanh;
  return Mlp(c, rng);
}

TEST(ModelIo, RoundTripPreservesPredictionsExactly) {
  Mlp original = make_model(1);
  std::stringstream ss;
  save_model(original, ss);
  Mlp loaded = load_model(ss);

  Rng data_rng(2);
  Matrix x(6, 3);
  for (Real& v : x.data()) {
    v = data_rng.normal();
  }
  const Matrix a = original.predict(x);
  const Matrix b = loaded.predict(x);
  for (Index r = 0; r < a.rows(); ++r) {
    for (Index c = 0; c < a.cols(); ++c) {
      // Hexfloat serialization: bit-exact round trip.
      EXPECT_EQ(a(r, c), b(r, c));
    }
  }
}

TEST(ModelIo, RoundTripPreservesArchitecture) {
  Mlp original = make_model(3);
  std::stringstream ss;
  save_model(original, ss);
  const Mlp loaded = load_model(ss);
  EXPECT_EQ(loaded.config().inputs, 3);
  EXPECT_EQ(loaded.config().outputs, 2);
  ASSERT_EQ(loaded.config().hidden.size(), 2u);
  EXPECT_EQ(loaded.config().hidden[0], 5);
  EXPECT_EQ(loaded.config().hidden[1], 4);
  EXPECT_EQ(loaded.config().hidden_activation, Activation::kTanh);
}

TEST(ModelIo, FileRoundTrip) {
  const std::string path = std::string(::testing::TempDir()) + "model.txt";
  Mlp original = make_model(4);
  save_model_file(original, path);
  Mlp loaded = load_model_file(path);
  EXPECT_EQ(loaded.parameter_count(), original.parameter_count());
}

TEST(ModelIo, GarbageHeaderThrows) {
  std::istringstream in("not-a-model 1\n");
  EXPECT_THROW(load_model(in), ModelIoError);
}

TEST(ModelIo, WrongVersionThrows) {
  std::istringstream in("ppdl-mlp 99\n");
  EXPECT_THROW(load_model(in), ModelIoError);
}

TEST(ModelIo, TruncatedFileThrows) {
  Mlp original = make_model(5);
  std::ostringstream os;
  save_model(original, os);
  const std::string full = os.str();
  std::istringstream in(full.substr(0, full.size() / 2));
  EXPECT_THROW(load_model(in), ModelIoError);
}

TEST(ModelIo, ScalerRoundTrip) {
  StandardScaler s;
  Matrix x(3, 2);
  x(0, 0) = 1;
  x(1, 0) = 2;
  x(2, 0) = 3;
  x(0, 1) = -1;
  x(1, 1) = 0;
  x(2, 1) = 1;
  s.fit(x);
  std::stringstream ss;
  save_scaler(s, ss);
  const StandardScaler loaded = load_scaler(ss);
  const Matrix a = s.transform(x);
  const Matrix b = loaded.transform(x);
  for (Index r = 0; r < 3; ++r) {
    for (Index c = 0; c < 2; ++c) {
      EXPECT_EQ(a(r, c), b(r, c));
    }
  }
}

TEST(ModelIo, UnfittedScalerSaveThrows) {
  StandardScaler s;
  std::ostringstream os;
  EXPECT_THROW(save_scaler(s, os), ContractViolation);
}

TEST(ModelIo, ScalerGarbageThrows) {
  std::istringstream in("ppdl-scaler 1\n-3\n");
  EXPECT_THROW(load_scaler(in), ModelIoError);
}

}  // namespace
}  // namespace ppdl::nn
