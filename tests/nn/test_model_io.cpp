#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "nn/model_io.hpp"

namespace ppdl::nn {
namespace {

Mlp make_model(U64 seed) {
  Rng rng(seed);
  MlpConfig c;
  c.inputs = 3;
  c.outputs = 2;
  c.hidden = {5, 4};
  c.hidden_activation = Activation::kTanh;
  return Mlp(c, rng);
}

TEST(ModelIo, RoundTripPreservesPredictionsExactly) {
  Mlp original = make_model(1);
  std::stringstream ss;
  save_model(original, ss);
  Mlp loaded = load_model(ss);

  Rng data_rng(2);
  Matrix x(6, 3);
  for (Real& v : x.data()) {
    v = data_rng.normal();
  }
  const Matrix a = original.predict(x);
  const Matrix b = loaded.predict(x);
  for (Index r = 0; r < a.rows(); ++r) {
    for (Index c = 0; c < a.cols(); ++c) {
      // Hexfloat serialization: bit-exact round trip.
      EXPECT_EQ(a(r, c), b(r, c));
    }
  }
}

TEST(ModelIo, RoundTripPreservesArchitecture) {
  Mlp original = make_model(3);
  std::stringstream ss;
  save_model(original, ss);
  const Mlp loaded = load_model(ss);
  EXPECT_EQ(loaded.config().inputs, 3);
  EXPECT_EQ(loaded.config().outputs, 2);
  ASSERT_EQ(loaded.config().hidden.size(), 2u);
  EXPECT_EQ(loaded.config().hidden[0], 5);
  EXPECT_EQ(loaded.config().hidden[1], 4);
  EXPECT_EQ(loaded.config().hidden_activation, Activation::kTanh);
}

TEST(ModelIo, FileRoundTrip) {
  const std::string path = std::string(::testing::TempDir()) + "model.txt";
  Mlp original = make_model(4);
  save_model_file(original, path);
  Mlp loaded = load_model_file(path);
  EXPECT_EQ(loaded.parameter_count(), original.parameter_count());
}

TEST(ModelIo, GarbageHeaderThrows) {
  std::istringstream in("not-a-model 1\n");
  EXPECT_THROW(load_model(in), ModelIoError);
}

TEST(ModelIo, WrongVersionThrows) {
  std::istringstream in("ppdl-mlp 99\n");
  EXPECT_THROW(load_model(in), ModelIoError);
}

TEST(ModelIo, TruncatedFileThrows) {
  Mlp original = make_model(5);
  std::ostringstream os;
  save_model(original, os);
  const std::string full = os.str();
  std::istringstream in(full.substr(0, full.size() / 2));
  EXPECT_THROW(load_model(in), ModelIoError);
}

TEST(ModelIo, ScalerRoundTrip) {
  StandardScaler s;
  Matrix x(3, 2);
  x(0, 0) = 1;
  x(1, 0) = 2;
  x(2, 0) = 3;
  x(0, 1) = -1;
  x(1, 1) = 0;
  x(2, 1) = 1;
  s.fit(x);
  std::stringstream ss;
  save_scaler(s, ss);
  const StandardScaler loaded = load_scaler(ss);
  const Matrix a = s.transform(x);
  const Matrix b = loaded.transform(x);
  for (Index r = 0; r < 3; ++r) {
    for (Index c = 0; c < 2; ++c) {
      EXPECT_EQ(a(r, c), b(r, c));
    }
  }
}

TEST(ModelIo, UnfittedScalerSaveThrows) {
  StandardScaler s;
  std::ostringstream os;
  EXPECT_THROW(save_scaler(s, os), ContractViolation);
}

TEST(ModelIo, ScalerGarbageThrows) {
  std::istringstream in("ppdl-scaler 1\n-3\n");
  EXPECT_THROW(load_scaler(in), ModelIoError);
}

// --- hostile-input paths: every reject must be a ModelIoError, never a
// --- ContractViolation, bad_alloc, or silent acceptance.

TEST(ModelIo, HostileLayerWidthRejectedBeforeAllocation) {
  // Claims ~10^12 inputs: must throw on the width cap (or the stream-size
  // guard), not attempt the allocation.
  std::istringstream in(
      "ppdl-mlp 1\ninputs 1000000000000\noutputs 1\n"
      "hidden hidden_activation relu\noutput_activation identity\n"
      "layers 1\n");
  EXPECT_THROW(load_model(in), ModelIoError);
}

TEST(ModelIo, HostileMatrixShapeRejected) {
  // rows × cols overflows/exceeds any plausible payload.
  std::istringstream in("3000000000 3000000000\n");
  EXPECT_THROW(load_matrix(in), ModelIoError);
}

TEST(ModelIo, MatrixCountPastInputRejected) {
  // Plausible-looking shape, but the stream holds 2 entries, not 10000.
  std::istringstream in("100 100\n0.0 0.0");
  EXPECT_THROW(load_matrix(in), ModelIoError);
}

TEST(ModelIo, NonFiniteMatrixEntryRejected) {
  std::istringstream in("1 2\n0.5 nan\n");
  EXPECT_THROW(load_matrix(in), ModelIoError);
}

TEST(ModelIo, UnknownActivationIsModelIoErrorNotContractViolation) {
  std::istringstream in(
      "ppdl-mlp 1\ninputs 2\noutputs 1\n"
      "hidden 3 hidden_activation exotic\n");
  try {
    load_model(in);
    FAIL() << "expected ModelIoError";
  } catch (const ModelIoError& e) {
    EXPECT_NE(std::string(e.what()).find("unknown"), std::string::npos);
  }
}

TEST(ModelIo, TooManyHiddenLayersRejected) {
  std::ostringstream os;
  os << "ppdl-mlp 1\ninputs 2\noutputs 1\nhidden";
  for (int i = 0; i < 1025; ++i) {
    os << " 4";
  }
  os << " hidden_activation relu\n";
  std::istringstream in(os.str());
  EXPECT_THROW(load_model(in), ModelIoError);
}

TEST(ModelIo, ScalerHugeCountRejected) {
  std::istringstream in("ppdl-scaler 1\n99999999\n0.0 1.0\n");
  EXPECT_THROW(load_scaler(in), ModelIoError);
}

TEST(ModelIo, ScalerNonFiniteMeanRejected) {
  std::istringstream in("ppdl-scaler 1\n1\ninf\n1.0\n");
  EXPECT_THROW(load_scaler(in), ModelIoError);
}

TEST(ModelIo, ScalerNonPositiveScaleIsModelIoError) {
  // scaler.restore() would PPDL_REQUIRE on these; the load boundary must
  // reject them first with its own typed error.
  for (const char* scale : {"0.0", "-1.0", "nan"}) {
    std::istringstream in(std::string("ppdl-scaler 1\n1\n0.5\n") + scale +
                          "\n");
    EXPECT_THROW(load_scaler(in), ModelIoError) << scale;
  }
}

}  // namespace
}  // namespace ppdl::nn
