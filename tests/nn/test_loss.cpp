#include <gtest/gtest.h>

#include "common/check.hpp"
#include "nn/loss.hpp"

namespace ppdl::nn {
namespace {

Matrix row(std::initializer_list<Real> values) {
  Matrix m(1, static_cast<Index>(values.size()));
  Index c = 0;
  for (const Real v : values) {
    m(0, c++) = v;
  }
  return m;
}

TEST(Loss, MseValue) {
  const Matrix pred = row({2.0, 4.0});
  const Matrix target = row({1.0, 2.0});
  EXPECT_DOUBLE_EQ(loss_value(pred, target, Loss::kMse), (1.0 + 4.0) / 2.0);
}

TEST(Loss, MaeValue) {
  const Matrix pred = row({2.0, -1.0});
  const Matrix target = row({0.0, 0.0});
  EXPECT_DOUBLE_EQ(loss_value(pred, target, Loss::kMae), 1.5);
}

TEST(Loss, HuberQuadraticInside) {
  const Matrix pred = row({0.5});
  const Matrix target = row({0.0});
  EXPECT_DOUBLE_EQ(loss_value(pred, target, Loss::kHuber, 1.0), 0.125);
}

TEST(Loss, HuberLinearOutside) {
  const Matrix pred = row({3.0});
  const Matrix target = row({0.0});
  // δ(|d| − δ/2) = 1·(3 − 0.5) = 2.5
  EXPECT_DOUBLE_EQ(loss_value(pred, target, Loss::kHuber, 1.0), 2.5);
}

TEST(Loss, ZeroForExactPrediction) {
  const Matrix x = row({1.0, -2.0, 3.0});
  for (const Loss loss : {Loss::kMse, Loss::kMae, Loss::kHuber}) {
    EXPECT_DOUBLE_EQ(loss_value(x, x, loss), 0.0);
  }
}

class LossGradients : public ::testing::TestWithParam<Loss> {};

TEST_P(LossGradients, MatchesFiniteDifference) {
  const Loss loss = GetParam();
  Matrix pred(2, 2);
  pred(0, 0) = 0.3;
  pred(0, 1) = -1.2;
  pred(1, 0) = 2.0;
  pred(1, 1) = 0.4;
  Matrix target(2, 2);
  target(0, 0) = 0.0;
  target(0, 1) = -1.0;
  target(1, 0) = 2.5;
  target(1, 1) = 0.4;  // zero error entry exercises kinks at 0

  const Matrix grad = loss_gradient(pred, target, loss);
  const Real h = 1e-7;
  for (Index r = 0; r < 2; ++r) {
    for (Index c = 0; c < 2; ++c) {
      Matrix plus = pred;
      Matrix minus = pred;
      plus(r, c) += h;
      minus(r, c) -= h;
      const Real numeric = (loss_value(plus, target, loss) -
                            loss_value(minus, target, loss)) /
                           (2.0 * h);
      EXPECT_NEAR(grad(r, c), numeric, 1e-5)
          << to_string(loss) << " at (" << r << "," << c << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllLosses, LossGradients,
                         ::testing::Values(Loss::kMse, Loss::kMae,
                                           Loss::kHuber),
                         [](const auto& param_info) { return to_string(param_info.param); });

TEST(Loss, ShapeMismatchThrows) {
  const Matrix a(2, 2);
  const Matrix b(2, 3);
  EXPECT_THROW(loss_value(a, b, Loss::kMse), ContractViolation);
  EXPECT_THROW(loss_gradient(a, b, Loss::kMse), ContractViolation);
}

TEST(Loss, NameRoundTrip) {
  for (const Loss loss : {Loss::kMse, Loss::kMae, Loss::kHuber}) {
    EXPECT_EQ(parse_loss(to_string(loss)), loss);
  }
  EXPECT_THROW(parse_loss("cross_entropy"), ContractViolation);
}

}  // namespace
}  // namespace ppdl::nn
