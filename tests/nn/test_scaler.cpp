#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "nn/scaler.hpp"

namespace ppdl::nn {
namespace {

Matrix sample_data() {
  Matrix x(4, 2);
  x(0, 0) = 1.0;
  x(1, 0) = 2.0;
  x(2, 0) = 3.0;
  x(3, 0) = 4.0;
  x(0, 1) = 10.0;
  x(1, 1) = 10.0;
  x(2, 1) = 10.0;
  x(3, 1) = 10.0;  // constant column
  return x;
}

TEST(StandardScaler, TransformedColumnsHaveZeroMeanUnitStd) {
  const Matrix x = sample_data();
  StandardScaler s;
  s.fit(x);
  const Matrix z = s.transform(x);
  Real sum = 0.0;
  Real sq = 0.0;
  for (Index r = 0; r < 4; ++r) {
    sum += z(r, 0);
    sq += z(r, 0) * z(r, 0);
  }
  EXPECT_NEAR(sum / 4.0, 0.0, 1e-12);
  EXPECT_NEAR(std::sqrt(sq / 4.0), 1.0, 1e-12);
}

TEST(StandardScaler, ConstantColumnMapsToZeroWithoutNan) {
  const Matrix x = sample_data();
  StandardScaler s;
  s.fit(x);
  const Matrix z = s.transform(x);
  for (Index r = 0; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(z(r, 1), 0.0);
  }
}

TEST(StandardScaler, InverseTransformRoundTrips) {
  const Matrix x = sample_data();
  StandardScaler s;
  s.fit(x);
  const Matrix back = s.inverse_transform(s.transform(x));
  for (Index r = 0; r < x.rows(); ++r) {
    for (Index c = 0; c < x.cols(); ++c) {
      EXPECT_NEAR(back(r, c), x(r, c), 1e-12);
    }
  }
}

TEST(StandardScaler, UnfittedThrows) {
  StandardScaler s;
  EXPECT_FALSE(s.fitted());
  EXPECT_THROW(s.transform(sample_data()), ContractViolation);
  EXPECT_THROW(s.inverse_transform(sample_data()), ContractViolation);
}

TEST(StandardScaler, ColumnMismatchThrows) {
  StandardScaler s;
  s.fit(sample_data());
  const Matrix wrong(2, 3);
  EXPECT_THROW(s.transform(wrong), ContractViolation);
}

TEST(StandardScaler, RestoreRebuildsState) {
  StandardScaler s;
  s.restore({1.0, 2.0}, {3.0, 4.0});
  EXPECT_TRUE(s.fitted());
  Matrix x(1, 2);
  x(0, 0) = 4.0;
  x(0, 1) = 10.0;
  const Matrix z = s.transform(x);
  EXPECT_DOUBLE_EQ(z(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(z(0, 1), 2.0);
  EXPECT_THROW(s.restore({1.0}, {0.0}), ContractViolation);
}

TEST(MinMaxScaler, MapsToUnitInterval) {
  const Matrix x = sample_data();
  MinMaxScaler s;
  s.fit(x);
  const Matrix z = s.transform(x);
  EXPECT_DOUBLE_EQ(z(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(z(3, 0), 1.0);
  for (Index r = 0; r < 4; ++r) {
    EXPECT_GE(z(r, 0), 0.0);
    EXPECT_LE(z(r, 0), 1.0);
    EXPECT_DOUBLE_EQ(z(r, 1), 0.0);  // constant column
  }
}

TEST(MinMaxScaler, InverseRoundTrips) {
  Rng rng(3);
  Matrix x(10, 3);
  for (Real& v : x.data()) {
    v = rng.uniform(-5.0, 5.0);
  }
  MinMaxScaler s;
  s.fit(x);
  const Matrix back = s.inverse_transform(s.transform(x));
  for (Index r = 0; r < x.rows(); ++r) {
    for (Index c = 0; c < x.cols(); ++c) {
      EXPECT_NEAR(back(r, c), x(r, c), 1e-12);
    }
  }
}

TEST(MinMaxScaler, UnfittedThrows) {
  MinMaxScaler s;
  EXPECT_THROW(s.transform(sample_data()), ContractViolation);
}

}  // namespace
}  // namespace ppdl::nn
