#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "nn/loss.hpp"
#include "nn/mlp.hpp"

namespace ppdl::nn {
namespace {

TEST(MlpConfig, PaperDefaultHasTenHiddenLayers) {
  const MlpConfig c = MlpConfig::paper_default();
  EXPECT_EQ(c.inputs, 3);
  EXPECT_EQ(c.outputs, 1);
  EXPECT_EQ(c.hidden.size(), 10u);
  EXPECT_EQ(c.hidden_activation, Activation::kRelu);
  EXPECT_EQ(c.output_activation, Activation::kIdentity);
}

TEST(Mlp, LayerCountIsHiddenPlusOne) {
  Rng rng(1);
  const Mlp mlp(MlpConfig::paper_default(3, 1, 10, 8), rng);
  EXPECT_EQ(mlp.layer_count(), 11);
}

TEST(Mlp, ParameterCountMatchesArchitecture) {
  Rng rng(1);
  MlpConfig c;
  c.inputs = 3;
  c.outputs = 2;
  c.hidden = {4, 5};
  const Mlp mlp(c, rng);
  // (3·4+4) + (4·5+5) + (5·2+2) = 16 + 25 + 12
  EXPECT_EQ(mlp.parameter_count(), 53);
}

TEST(Mlp, ForwardShape) {
  Rng rng(2);
  MlpConfig c;
  c.inputs = 4;
  c.outputs = 2;
  c.hidden = {6};
  Mlp mlp(c, rng);
  Matrix x(7, 4, 0.1);
  const Matrix y = mlp.forward(x);
  EXPECT_EQ(y.rows(), 7);
  EXPECT_EQ(y.cols(), 2);
}

TEST(Mlp, PredictConstMatchesForward) {
  Rng rng(3);
  MlpConfig c;
  c.hidden = {8, 8};
  Mlp mlp(c, rng);
  Matrix x(5, 3);
  Rng data_rng(4);
  for (Real& v : x.data()) {
    v = data_rng.normal();
  }
  const Matrix a = mlp.forward(x, false);
  const Mlp& view = mlp;
  const Matrix b = view.predict(x);
  for (Index r = 0; r < a.rows(); ++r) {
    for (Index col = 0; col < a.cols(); ++col) {
      EXPECT_DOUBLE_EQ(a(r, col), b(r, col));
    }
  }
}

TEST(Mlp, DeterministicInitForSeed) {
  Rng rng1(9);
  Rng rng2(9);
  const Mlp a(MlpConfig::paper_default(3, 1, 2, 4), rng1);
  const Mlp b(MlpConfig::paper_default(3, 1, 2, 4), rng2);
  for (Index l = 0; l < a.layer_count(); ++l) {
    const auto wa = a.layer(l).weights().data();
    const auto wb = b.layer(l).weights().data();
    for (std::size_t i = 0; i < wa.size(); ++i) {
      EXPECT_DOUBLE_EQ(wa[i], wb[i]);
    }
  }
}

TEST(Mlp, FullBackpropGradientCheck) {
  Rng rng(11);
  MlpConfig c;
  c.inputs = 2;
  c.outputs = 1;
  c.hidden = {3, 3};
  c.hidden_activation = Activation::kTanh;  // smooth for finite differences
  Mlp mlp(c, rng);

  Matrix x(5, 2);
  Matrix target(5, 1);
  Rng data_rng(12);
  for (Real& v : x.data()) {
    v = data_rng.normal();
  }
  for (Real& v : target.data()) {
    v = data_rng.normal();
  }

  const Matrix pred = mlp.forward(x, true);
  mlp.backward(loss_gradient(pred, target, Loss::kMse));

  const auto loss_of = [&](Mlp& m) {
    return loss_value(m.predict(x), target, Loss::kMse);
  };

  const Real h = 1e-6;
  for (Index l = 0; l < mlp.layer_count(); ++l) {
    const Matrix& grad = mlp.layer(l).weight_grad();
    for (Index i = 0; i < grad.rows(); ++i) {
      for (Index j = 0; j < grad.cols(); ++j) {
        Mlp plus = mlp;
        Mlp minus = mlp;
        plus.layer(l).weights()(i, j) += h;
        minus.layer(l).weights()(i, j) -= h;
        const Real numeric = (loss_of(plus) - loss_of(minus)) / (2 * h);
        EXPECT_NEAR(grad(i, j), numeric, 1e-4)
            << "layer " << l << " W(" << i << "," << j << ")";
      }
    }
  }
}

TEST(Mlp, InputSizeMismatchThrows) {
  Rng rng(13);
  Mlp mlp(MlpConfig::paper_default(3, 1, 1, 4), rng);
  const Matrix bad(2, 5);
  EXPECT_THROW(mlp.forward(bad), ContractViolation);
  EXPECT_THROW(mlp.predict(bad), ContractViolation);
}

TEST(Mlp, InvalidConfigThrows) {
  Rng rng(14);
  MlpConfig c;
  c.inputs = 0;
  EXPECT_THROW(Mlp(c, rng), ContractViolation);
  MlpConfig c2;
  c2.hidden = {0};
  EXPECT_THROW(Mlp(c2, rng), ContractViolation);
}

TEST(Mlp, ParameterSlotsCoverAllParameters) {
  Rng rng(15);
  Mlp mlp(MlpConfig::paper_default(3, 1, 2, 4), rng);
  const auto slots = mlp.parameter_slots();
  Index total = 0;
  for (const ParamSlot& slot : slots) {
    total += static_cast<Index>(slot.value.size());
    EXPECT_EQ(slot.value.size(), slot.grad.size());
  }
  EXPECT_EQ(total, mlp.parameter_count());
}

}  // namespace
}  // namespace ppdl::nn
