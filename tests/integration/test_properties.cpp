// Property-style parameterized sweeps over grid sizes, seeds, and solver
// settings: invariants that must hold for ANY generated power grid.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "analysis/ir_solver.hpp"
#include "core/ir_predictor.hpp"
#include "grid/generator.hpp"
#include "grid/perturb.hpp"
#include "planner/conventional_planner.hpp"

namespace ppdl {
namespace {

grid::GridSpec sized_spec(Index stripes) {
  grid::GridSpec s;
  s.name = "prop_" + std::to_string(stripes);
  s.m1_stripes = stripes;
  s.m4_stripes = stripes;
  s.m7_stripes = std::max<Index>(3, stripes / 6);
  s.total_current = 0.002 * static_cast<Real>(stripes * stripes);
  s.blocks_x = 3;
  s.blocks_y = 3;
  return s;
}

class GridProperty
    : public ::testing::TestWithParam<std::tuple<Index, U64>> {};

TEST_P(GridProperty, GeneratedGridIsAnalyzableAndPhysical) {
  const auto [stripes, seed] = GetParam();
  const grid::GeneratedBenchmark bench =
      grid::generate_power_grid(sized_spec(stripes), 1.0, seed);
  bench.grid.validate();

  const analysis::IrAnalysisResult res = analysis::analyze_ir_drop(bench.grid);
  ASSERT_TRUE(res.converged);

  // 1. Every voltage lies in (0, Vdd]; drops are non-negative.
  for (std::size_t v = 0; v < res.node_voltage.size(); ++v) {
    EXPECT_GT(res.node_voltage[v], 0.0);
    EXPECT_LE(res.node_voltage[v], bench.grid.vdd() + 1e-9);
    EXPECT_GE(res.node_ir_drop[v], -1e-9);
  }
  // 2. Superposition: energy balances — power delivered by pads equals power
  //    consumed by resistors plus power absorbed by loads.
  Real resistor_power = 0.0;
  for (Index b = 0; b < bench.grid.branch_count(); ++b) {
    const Real i = res.branch_current[static_cast<std::size_t>(b)];
    resistor_power += i * i * bench.grid.branch_resistance(b);
  }
  Real load_power = 0.0;
  for (const grid::CurrentLoad& load : bench.grid.loads()) {
    load_power +=
        load.amps * res.node_voltage[static_cast<std::size_t>(load.node)];
  }
  Real pad_power = 0.0;
  {
    std::vector<Real> injected(static_cast<std::size_t>(bench.grid.node_count()),
                               0.0);
    for (Index b = 0; b < bench.grid.branch_count(); ++b) {
      const grid::Branch& br = bench.grid.branch(b);
      const Real i = res.branch_current[static_cast<std::size_t>(b)];
      injected[static_cast<std::size_t>(br.n1)] += i;
      injected[static_cast<std::size_t>(br.n2)] -= i;
    }
    for (const grid::Pad& pad : bench.grid.pads()) {
      pad_power += injected[static_cast<std::size_t>(pad.node)] * pad.voltage;
    }
  }
  EXPECT_NEAR(pad_power, resistor_power + load_power,
              1e-6 * std::max(pad_power, 1e-12));
}

TEST_P(GridProperty, TreeEstimateDominatesTrueDrop) {
  const auto [stripes, seed] = GetParam();
  const grid::GeneratedBenchmark bench =
      grid::generate_power_grid(sized_spec(stripes), 1.0, seed);
  const analysis::IrAnalysisResult truth = analysis::analyze_ir_drop(bench.grid);
  const core::KirchhoffIrPredictor predictor;
  const core::IrPrediction estimate = predictor.predict(bench.grid);
  EXPECT_GE(estimate.worst_ir_drop, truth.worst_ir_drop * 0.999);
}

TEST_P(GridProperty, PlannerNeverLoosensAndRespectsBounds) {
  const auto [stripes, seed] = GetParam();
  grid::GeneratedBenchmark bench =
      grid::generate_power_grid(sized_spec(stripes), 1.0, seed);

  std::vector<Real> before;
  for (Index b = 0; b < bench.grid.branch_count(); ++b) {
    before.push_back(bench.grid.branch(b).width);
  }
  planner::PlannerOptions opts;
  opts.update.ir_limit = 0.7 * analysis::analyze_ir_drop(bench.grid).worst_ir_drop;
  opts.update.jmax = 1e9;  // IR-driven only for this property
  planner::run_conventional_planner(bench.grid, opts);

  const grid::DesignRules rules;
  for (Index b = 0; b < bench.grid.branch_count(); ++b) {
    const grid::Branch& br = bench.grid.branch(b);
    if (br.kind != grid::BranchKind::kWire) {
      continue;
    }
    EXPECT_GE(br.width, before[static_cast<std::size_t>(b)]);
    EXPECT_LE(br.width,
              grid::max_width(bench.grid.layer(br.layer), rules) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, GridProperty,
    ::testing::Combine(::testing::Values<Index>(8, 12, 18),
                       ::testing::Values<U64>(1, 99)),
    [](const auto& param_info) {
      // Built via += — GCC 12's -Wrestrict mis-fires on
      // operator+(const char*, string&&) at -O3 (PR105329).
      std::string name = "s";
      name += std::to_string(std::get<0>(param_info.param));
      name += "_seed";
      name += std::to_string(std::get<1>(param_info.param));
      return name;
    });

class SolverTolerance : public ::testing::TestWithParam<Real> {};

TEST_P(SolverTolerance, ResidualMeetsRequestedTolerance) {
  const Real tol = GetParam();
  const grid::GeneratedBenchmark bench =
      grid::generate_power_grid(sized_spec(10), 1.0, 5);
  analysis::IrAnalysisOptions opts;
  opts.cg_tolerance = tol;
  const analysis::IrAnalysisResult res = analysis::analyze_ir_drop(bench.grid, opts);
  EXPECT_TRUE(res.converged);
}

INSTANTIATE_TEST_SUITE_P(Tolerances, SolverTolerance,
                         ::testing::Values(1e-4, 1e-6, 1e-8, 1e-10),
                         [](const auto& param_info) {
                           const int exp10 = static_cast<int>(
                               -std::log10(param_info.param) + 0.5);
                           std::string name = "tol1e";
                           name += std::to_string(exp10);
                           return name;
                         });

class PerturbationGamma : public ::testing::TestWithParam<Real> {};

TEST_P(PerturbationGamma, TotalCurrentStaysWithinGammaBand) {
  const Real gamma = GetParam();
  grid::GeneratedBenchmark bench =
      grid::generate_power_grid(sized_spec(10), 1.0, 6);
  const Real before = bench.grid.total_load_current();
  grid::perturb_grid(bench.grid, grid::PerturbationKind::kCurrentWorkloads,
                     gamma, 17, 0.07);
  const Real after = bench.grid.total_load_current();
  EXPECT_GE(after, before * (1.0 - gamma));
  EXPECT_LE(after, before * (1.0 + gamma));
}

INSTANTIATE_TEST_SUITE_P(Gammas, PerturbationGamma,
                         ::testing::Values(0.10, 0.15, 0.20, 0.25, 0.30),
                         [](const auto& param_info) {
                           std::string name = "g";
                           name += std::to_string(static_cast<int>(
                               param_info.param * 100 + 0.5));
                           return name;
                         });

}  // namespace
}  // namespace ppdl
