// Integration tests exercising the full stack across module boundaries:
// generator → netlist IO → planner → DL model → fast IR prediction →
// sign-off, the way a downstream user composes the library.
#include <gtest/gtest.h>

#include <sstream>

#include "core/experiments.hpp"
#include "core/flow.hpp"
#include "grid/netlist.hpp"
#include "nn/model_io.hpp"
#include "planner/sign_off.hpp"
#include "support/fixtures.hpp"

namespace ppdl {
namespace {

TEST(EndToEnd, NetlistRoundTripThenFullFlow) {
  // Generate → serialize to SPICE → parse back → run the whole flow on the
  // parsed grid. Proves real IBMPG decks would work end to end.
  grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  std::stringstream ss;
  grid::write_netlist(bench.grid, ss);
  grid::PowerGrid parsed = grid::parse_netlist(ss, "ibmpg1-io");

  planner::PlannerOptions opts =
      core::planner_options_for(bench.spec, 40);
  const planner::PlannerResult planned =
      planner::run_conventional_planner(parsed, opts);
  EXPECT_TRUE(planned.converged);

  core::PpdlModelConfig mc;
  mc.hidden_layers = 3;
  mc.hidden_units = 12;
  mc.train.epochs = 15;
  core::PowerPlanningDL model(mc);
  model.fit(parsed);
  const core::WidthPrediction p = model.predict(parsed);
  EXPECT_EQ(static_cast<Index>(p.branch.size()), parsed.wire_count());
}

TEST(EndToEnd, DlDesignPassesRelaxedSignOff) {
  // The DL-predicted design will not be sign-off perfect (that is the
  // paper's stated trade-off) but must be close: verify against a margin
  // 30% looser than the planner's.
  core::FlowOptions opts;
  opts.benchmark.scale = 0.02;
  opts.benchmark.seed = 33;
  opts.model.hidden_layers = 6;
  opts.model.hidden_units = 24;
  opts.model.train.epochs = 50;

  const grid::GeneratedBenchmark bench =
      core::make_benchmark("ibmpg1", opts.benchmark);
  const core::FlowResult flow = core::run_flow(bench, opts);

  grid::PowerGrid dl_design = bench.grid;
  planner::PlannerOptions popts = core::planner_options_for(bench.spec, 40);
  planner::run_conventional_planner(dl_design, popts);
  // Perturb and apply the DL widths.
  grid::PowerGrid perturbed = grid::perturbed_copy(
      dl_design, opts.perturbation, opts.gamma, opts.perturb_seed,
      bench.spec.ir_limit_mv * 1e-3);
  core::PowerPlanningDL model(opts.model);
  model.fit(dl_design);
  const core::WidthPrediction prediction = model.predict(perturbed);
  core::PowerPlanningDL::apply_widths(perturbed, prediction);

  planner::SignOffOptions sopts;
  sopts.ir_limit = bench.spec.ir_limit_mv * 1e-3 * 1.4;
  sopts.jmax = bench.spec.jmax * 1.4;
  // Width prediction may exceed DRC max in the tail; check IR/EM only.
  const planner::SignOffReport report = planner::run_sign_off(perturbed, sopts);
  EXPECT_TRUE(report.ir_ok) << report.render();
  EXPECT_LT(flow.width_mse_pct, 60.0);
}

TEST(EndToEnd, ModelPersistsAcrossSessions) {
  // Train on the golden design, save, load, and verify identical
  // predictions — the "historical data" reuse story.
  grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  planner::PlannerOptions opts = core::planner_options_for(bench.spec, 40);
  planner::run_conventional_planner(bench.grid, opts);

  const core::FeatureExtractor extractor;
  const core::Dataset d = core::build_layer_datasets(
      bench.grid, core::FeatureSet::combined(), extractor)[0];

  nn::StandardScaler xs;
  nn::StandardScaler ys;
  xs.fit(d.x);
  ys.fit(d.y);
  Rng rng(3);
  nn::Mlp mlp(nn::MlpConfig::paper_default(3, 1, 3, 12), rng);
  nn::TrainOptions topts;
  topts.epochs = 10;
  nn::train(mlp, xs.transform(d.x), ys.transform(d.y), topts);

  std::stringstream model_file;
  nn::save_model(mlp, model_file);
  std::stringstream scaler_file;
  nn::save_scaler(xs, scaler_file);

  nn::Mlp loaded = nn::load_model(model_file);
  const nn::StandardScaler xs2 = nn::load_scaler(scaler_file);
  const nn::Matrix a = mlp.predict(xs.transform(d.x));
  const nn::Matrix b = loaded.predict(xs2.transform(d.x));
  for (Index r = 0; r < a.rows(); ++r) {
    EXPECT_EQ(a(r, 0), b(r, 0));
  }
}

TEST(EndToEnd, FeatureStudyRanksCombinedHighest) {
  // Table I's qualitative claim: the combined (X, Y, Id) features beat any
  // single feature. Needs a grid large enough for the held-out split to be
  // statistically meaningful.
  core::BenchmarkOptions bo;
  bo.scale = 0.02;
  bo.seed = 12345;
  grid::GeneratedBenchmark bench = core::make_benchmark("ibmpg1", bo);
  planner::PlannerOptions opts = core::planner_options_for(bench.spec, 40);
  planner::run_conventional_planner(bench.grid, opts);

  core::PpdlModelConfig mc;
  mc.hidden_layers = 4;
  mc.hidden_units = 24;
  mc.train.epochs = 60;
  mc.train.batch_size = 32;
  const auto rows = core::feature_r2_study(bench.grid, mc);
  ASSERT_EQ(rows.size(), 4u);
  Real best_single = -1e9;
  Real combined = 0.0;
  for (const core::FeatureR2& row : rows) {
    if (row.label == "Combined") {
      combined = row.r2;
    } else {
      best_single = std::max(best_single, row.r2);
    }
  }
  EXPECT_GT(combined, best_single);
  EXPECT_GT(combined, 0.5);
}

TEST(EndToEnd, PerturbationSweepTrendsUpward) {
  grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  core::FlowOptions base;
  base.model.hidden_layers = 3;
  base.model.hidden_units = 12;
  base.model.train.epochs = 15;
  const auto points = core::perturbation_sweep(
      bench, base, {0.10, 0.30}, {grid::PerturbationKind::kBoth});
  ASSERT_EQ(points.size(), 2u);
  // Larger γ must not materially improve accuracy.
  EXPECT_LE(points[0].mse_pct, points[1].mse_pct * 1.25);
}

}  // namespace
}  // namespace ppdl
