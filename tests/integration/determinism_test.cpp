// End-to-end determinism: the parallel substrate must produce BIT-IDENTICAL
// results for any thread count (1, 2, 8) and across repeated runs at the
// same count. Exercised through every parallelized hot path: the IR solver,
// NN training, golden-dataset generation, and the conventional planner.
//
// All comparisons are EXPECT_EQ on doubles — exact equality is the
// contract, not a tolerance.
#include <gtest/gtest.h>

#include <vector>

#include "analysis/ir_solver.hpp"
#include "common/obs.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/flow.hpp"
#include "core/golden.hpp"
#include "core/ppdl_model.hpp"
#include "nn/mlp.hpp"
#include "nn/trainer.hpp"
#include "planner/conventional_planner.hpp"
#include "support/fixtures.hpp"

namespace ppdl {
namespace {

struct ThreadGuard {
  ~ThreadGuard() { parallel::set_num_threads(0); }
};

const Index kThreadCounts[] = {1, 2, 8};

void expect_bitwise_equal(const std::vector<Real>& a,
                          const std::vector<Real>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << what << " differs at element " << i;
  }
}

std::vector<Real> to_vector(std::span<const Real> s) {
  return std::vector<Real>(s.begin(), s.end());
}

TEST(Determinism, SolverSolutionAcrossThreadCounts) {
  ThreadGuard guard;
  const grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();

  const auto solve_at = [&](Index threads) {
    parallel::set_num_threads(threads);
    return analysis::analyze_ir_drop(bench.grid);
  };

  const analysis::IrAnalysisResult ref = solve_at(1);
  for (const Index threads : kThreadCounts) {
    const analysis::IrAnalysisResult got = solve_at(threads);
    expect_bitwise_equal(ref.node_ir_drop, got.node_ir_drop, "node_ir_drop");
    expect_bitwise_equal(ref.branch_current, got.branch_current,
                         "branch_current");
    EXPECT_EQ(ref.worst_ir_drop, got.worst_ir_drop);
  }
  // Repeatability at a fixed parallel count.
  const analysis::IrAnalysisResult again = solve_at(8);
  expect_bitwise_equal(ref.node_ir_drop, again.node_ir_drop,
                       "node_ir_drop repeat");
}

// The parallel-scalable preconditioners carry the same contract: the level
// schedule and the Chebyshev recurrence must give bit-identical solves for
// any thread count, end-to-end through the IR solver.
TEST(Determinism, SolverSolutionPerPreconditionerAcrossThreadCounts) {
  ThreadGuard guard;
  const grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();

  for (const linalg::PreconditionerKind kind :
       {linalg::PreconditionerKind::kIc0Level,
        linalg::PreconditionerKind::kChebyshev}) {
    const auto solve_at = [&](Index threads) {
      parallel::set_num_threads(threads);
      analysis::IrAnalysisOptions opts;
      opts.preconditioner = kind;
      return analysis::analyze_ir_drop(bench.grid, opts);
    };

    const analysis::IrAnalysisResult ref = solve_at(1);
    EXPECT_TRUE(ref.converged) << linalg::to_string(kind);
    for (const Index threads : kThreadCounts) {
      const analysis::IrAnalysisResult got = solve_at(threads);
      SCOPED_TRACE(testing::Message() << linalg::to_string(kind)
                                      << " threads=" << threads);
      expect_bitwise_equal(ref.node_ir_drop, got.node_ir_drop,
                           "node_ir_drop");
      expect_bitwise_equal(ref.branch_current, got.branch_current,
                           "branch_current");
      EXPECT_EQ(ref.worst_ir_drop, got.worst_ir_drop);
      EXPECT_EQ(ref.cg_iterations, got.cg_iterations);
    }
    const analysis::IrAnalysisResult again = solve_at(8);
    expect_bitwise_equal(ref.node_ir_drop, again.node_ir_drop,
                         "node_ir_drop repeat");
  }
}

// The run-report metric story must also be thread-count independent: the
// deterministic counters and gauges the new preconditioners record (applies,
// level counts, polynomial degree, CG iterations) are compared as
// before/after registry deltas at every thread count.
TEST(Determinism, PreconditionerMetricsAcrossThreadCounts) {
  ThreadGuard guard;
  const grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();

  for (const linalg::PreconditionerKind kind :
       {linalg::PreconditionerKind::kIc0Level,
        linalg::PreconditionerKind::kChebyshev}) {
    const auto metrics_at = [&](Index threads) {
      parallel::set_num_threads(threads);
      const obs::MetricsSnapshot before =
          obs::MetricsRegistry::global().snapshot();
      analysis::IrAnalysisOptions opts;
      opts.preconditioner = kind;
      analysis::analyze_ir_drop(bench.grid, opts);
      return obs::MetricsRegistry::global().snapshot().delta_since(before);
    };

    const obs::MetricsSnapshot ref = metrics_at(1);
    const char* prefix = kind == linalg::PreconditionerKind::kIc0Level
                             ? "precond.ic0_level."
                             : "precond.chebyshev.";
    EXPECT_GT(ref.counters.at(std::string(prefix) + "applies"), 0)
        << linalg::to_string(kind);
    for (const Index threads : kThreadCounts) {
      const obs::MetricsSnapshot got = metrics_at(threads);
      SCOPED_TRACE(testing::Message() << linalg::to_string(kind)
                                      << " threads=" << threads);
      for (const auto& [name, value] : ref.counters) {
        if (name.rfind("precond.", 0) == 0 || name.rfind("cg.", 0) == 0) {
          ASSERT_TRUE(got.counters.contains(name)) << name;
          EXPECT_EQ(got.counters.at(name), value) << name;
        }
      }
      for (const auto& [name, value] : ref.gauges) {
        if (name.rfind("precond.", 0) == 0) {
          ASSERT_TRUE(got.gauges.contains(name)) << name;
          EXPECT_EQ(got.gauges.at(name), value) << name;
        }
      }
    }
  }
}

TEST(Determinism, TrainedWeightsAcrossThreadCounts) {
  ThreadGuard guard;
  // Synthetic regression problem big enough to span several gradient
  // chunks per batch (batch 64, grain 16 → 4 chunks).
  const Index rows = 512;
  nn::Matrix x(rows, 3);
  nn::Matrix y(rows, 1);
  Rng rng(11);
  for (Index r = 0; r < rows; ++r) {
    const Real a = rng.uniform(-1.0, 1.0);
    const Real b = rng.uniform(-1.0, 1.0);
    const Real c = rng.uniform(-1.0, 1.0);
    x(r, 0) = a;
    x(r, 1) = b;
    x(r, 2) = c;
    y(r, 0) = 0.5 * a - 1.5 * b * b + 0.25 * c;
  }

  const auto train_at = [&](Index threads) {
    parallel::set_num_threads(threads);
    nn::MlpConfig cfg = nn::MlpConfig::paper_default(3, 1, 4, 16);
    Rng init(5);
    nn::Mlp model(cfg, init);
    nn::TrainOptions opts;
    opts.epochs = 8;
    opts.batch_size = 64;
    opts.learning_rate = 1e-3;
    nn::train(model, x, y, opts);
    return model.snapshot_parameters();
  };

  const std::vector<nn::Matrix> ref = train_at(1);
  for (const Index threads : kThreadCounts) {
    const std::vector<nn::Matrix> got = train_at(threads);
    ASSERT_EQ(ref.size(), got.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      expect_bitwise_equal(to_vector(ref[i].data()), to_vector(got[i].data()),
                           "trained parameter tensor");
    }
  }
  const std::vector<nn::Matrix> again = train_at(8);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    expect_bitwise_equal(to_vector(ref[i].data()), to_vector(again[i].data()),
                         "trained parameter tensor repeat");
  }
}

TEST(Determinism, PlannerWidthsAcrossThreadCounts) {
  ThreadGuard guard;
  const grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();

  const auto plan_at = [&](Index threads) {
    parallel::set_num_threads(threads);
    grid::PowerGrid pg = bench.grid;
    planner::PlannerOptions opts = core::planner_options_for(bench.spec, 40);
    planner::run_conventional_planner(pg, opts);
    std::vector<Real> widths;
    widths.reserve(static_cast<std::size_t>(pg.branch_count()));
    for (Index bi = 0; bi < pg.branch_count(); ++bi) {
      widths.push_back(pg.branch(bi).width);
    }
    return widths;
  };

  const std::vector<Real> ref = plan_at(1);
  for (const Index threads : kThreadCounts) {
    expect_bitwise_equal(ref, plan_at(threads), "planner widths");
  }
  expect_bitwise_equal(ref, plan_at(8), "planner widths repeat");
}

TEST(Determinism, GoldenDatasetsAcrossThreadCounts) {
  ThreadGuard guard;
  core::GoldenDesignOptions opts;
  opts.benchmark.scale = 0.01;
  opts.benchmark.seed = 12345;
  const std::vector<std::string> names = {"ibmpg1", "ibmpg2"};

  const auto generate_at = [&](Index threads) {
    parallel::set_num_threads(threads);
    return core::generate_golden_datasets(names, opts);
  };

  const core::GoldenSuite ref = generate_at(1);
  ASSERT_EQ(ref.designs.size(), names.size());
  for (const core::GoldenDesign& d : ref.designs) {
    EXPECT_TRUE(d.completed) << d.name;
    EXPECT_FALSE(d.datasets.empty()) << d.name;
  }

  for (const Index threads : kThreadCounts) {
    const core::GoldenSuite got = generate_at(threads);
    ASSERT_EQ(got.designs.size(), ref.designs.size());
    for (std::size_t i = 0; i < ref.designs.size(); ++i) {
      const core::GoldenDesign& rd = ref.designs[i];
      const core::GoldenDesign& gd = got.designs[i];
      EXPECT_EQ(rd.name, gd.name);
      EXPECT_EQ(rd.converged, gd.converged);
      ASSERT_EQ(rd.datasets.size(), gd.datasets.size());
      for (std::size_t k = 0; k < rd.datasets.size(); ++k) {
        EXPECT_EQ(rd.datasets[k].layer, gd.datasets[k].layer);
        expect_bitwise_equal(to_vector(rd.datasets[k].x.data()),
                             to_vector(gd.datasets[k].x.data()),
                             "dataset features");
        expect_bitwise_equal(to_vector(rd.datasets[k].y.data()),
                             to_vector(gd.datasets[k].y.data()),
                             "dataset widths");
      }
    }
  }
}

TEST(Determinism, LayerModelFitAcrossThreadCounts) {
  ThreadGuard guard;
  grid::GeneratedBenchmark bench = testsupport::make_tiny_benchmark();
  planner::PlannerOptions popts = core::planner_options_for(bench.spec, 40);
  planner::run_conventional_planner(bench.grid, popts);

  const auto predict_at = [&](Index threads) {
    parallel::set_num_threads(threads);
    core::PpdlModelConfig mc;
    mc.hidden_layers = 3;
    mc.hidden_units = 12;
    mc.train.epochs = 10;
    core::PowerPlanningDL model(mc);
    model.fit(bench.grid);
    const core::WidthPrediction p = model.predict(bench.grid);
    return p.predicted;
  };

  const std::vector<Real> ref = predict_at(1);
  for (const Index threads : kThreadCounts) {
    expect_bitwise_equal(ref, predict_at(threads), "predicted widths");
  }
  expect_bitwise_equal(ref, predict_at(8), "predicted widths repeat");
}

}  // namespace
}  // namespace ppdl
