// Cross-validation sweeps over all eight benchmark specs: independent
// implementations must agree with each other on every replica.
//   * SPICE round-trip: write → parse must preserve the electrical system
//     (node/branch counts, resistances, the solved IR field).
//   * Solver cross-check: direct sparse Cholesky and IC(0)-PCG must produce
//     the same node voltages.
//   * Tree-estimate bound: the Kirchhoff forest estimate dominates the true
//     solve on every topology.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/ir_solver.hpp"
#include "core/benchmarks.hpp"
#include "core/ir_predictor.hpp"
#include "grid/netlist.hpp"

namespace ppdl {
namespace {

class EveryBenchmark : public ::testing::TestWithParam<const char*> {
 protected:
  grid::GeneratedBenchmark make() const {
    core::BenchmarkOptions opts;
    opts.scale = 0.01;
    opts.seed = 2024;
    return core::make_benchmark(GetParam(), opts);
  }
};

TEST_P(EveryBenchmark, NetlistRoundTripPreservesTheIrField) {
  const grid::GeneratedBenchmark bench = make();
  std::stringstream ss;
  grid::write_netlist(bench.grid, ss);
  const grid::PowerGrid parsed = grid::parse_netlist(ss, GetParam());

  ASSERT_EQ(parsed.node_count(), bench.grid.node_count());
  ASSERT_EQ(parsed.branch_count(), bench.grid.branch_count());

  const analysis::IrAnalysisResult a = analysis::analyze_ir_drop(bench.grid);
  const analysis::IrAnalysisResult b = analysis::analyze_ir_drop(parsed);
  ASSERT_TRUE(a.converged);
  ASSERT_TRUE(b.converged);
  EXPECT_NEAR(a.worst_ir_drop, b.worst_ir_drop,
              1e-6 * a.worst_ir_drop + 1e-12);
}

TEST_P(EveryBenchmark, DirectAndIterativeSolversAgree) {
  const grid::GeneratedBenchmark bench = make();
  analysis::IrAnalysisOptions cg;
  cg.cg_tolerance = 1e-10;
  analysis::IrAnalysisOptions direct;
  direct.solver = analysis::SolverKind::kCholesky;
  const analysis::IrAnalysisResult a = analysis::analyze_ir_drop(bench.grid, cg);
  const analysis::IrAnalysisResult b =
      analysis::analyze_ir_drop(bench.grid, direct);
  for (std::size_t v = 0; v < a.node_voltage.size(); ++v) {
    EXPECT_NEAR(a.node_voltage[v], b.node_voltage[v], 1e-6);
  }
}

TEST_P(EveryBenchmark, TreeEstimateDominatesTruth) {
  const grid::GeneratedBenchmark bench = make();
  const analysis::IrAnalysisResult truth = analysis::analyze_ir_drop(bench.grid);
  const core::KirchhoffIrPredictor predictor;
  const core::IrPrediction estimate = predictor.predict(bench.grid);
  EXPECT_GE(estimate.worst_ir_drop, truth.worst_ir_drop * 0.999);
}

INSTANTIATE_TEST_SUITE_P(AllReplicas, EveryBenchmark,
                         ::testing::Values("ibmpg1", "ibmpg2", "ibmpg3",
                                           "ibmpg4", "ibmpg5", "ibmpg6",
                                           "ibmpgnew1", "ibmpgnew2"),
                         [](const auto& param_info) { return param_info.param; });

}  // namespace
}  // namespace ppdl
