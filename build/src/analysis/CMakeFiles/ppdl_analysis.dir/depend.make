# Empty dependencies file for ppdl_analysis.
# This may be replaced when dependencies are built.
