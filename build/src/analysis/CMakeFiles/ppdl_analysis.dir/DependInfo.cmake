
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/dual_rail.cpp" "src/analysis/CMakeFiles/ppdl_analysis.dir/dual_rail.cpp.o" "gcc" "src/analysis/CMakeFiles/ppdl_analysis.dir/dual_rail.cpp.o.d"
  "/root/repo/src/analysis/em.cpp" "src/analysis/CMakeFiles/ppdl_analysis.dir/em.cpp.o" "gcc" "src/analysis/CMakeFiles/ppdl_analysis.dir/em.cpp.o.d"
  "/root/repo/src/analysis/ir_map.cpp" "src/analysis/CMakeFiles/ppdl_analysis.dir/ir_map.cpp.o" "gcc" "src/analysis/CMakeFiles/ppdl_analysis.dir/ir_map.cpp.o.d"
  "/root/repo/src/analysis/ir_solver.cpp" "src/analysis/CMakeFiles/ppdl_analysis.dir/ir_solver.cpp.o" "gcc" "src/analysis/CMakeFiles/ppdl_analysis.dir/ir_solver.cpp.o.d"
  "/root/repo/src/analysis/mna.cpp" "src/analysis/CMakeFiles/ppdl_analysis.dir/mna.cpp.o" "gcc" "src/analysis/CMakeFiles/ppdl_analysis.dir/mna.cpp.o.d"
  "/root/repo/src/analysis/vectorless.cpp" "src/analysis/CMakeFiles/ppdl_analysis.dir/vectorless.cpp.o" "gcc" "src/analysis/CMakeFiles/ppdl_analysis.dir/vectorless.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ppdl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ppdl_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/robust/CMakeFiles/ppdl_robust.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/ppdl_grid.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
