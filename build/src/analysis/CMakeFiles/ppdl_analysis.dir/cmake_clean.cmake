file(REMOVE_RECURSE
  "CMakeFiles/ppdl_analysis.dir/dual_rail.cpp.o"
  "CMakeFiles/ppdl_analysis.dir/dual_rail.cpp.o.d"
  "CMakeFiles/ppdl_analysis.dir/em.cpp.o"
  "CMakeFiles/ppdl_analysis.dir/em.cpp.o.d"
  "CMakeFiles/ppdl_analysis.dir/ir_map.cpp.o"
  "CMakeFiles/ppdl_analysis.dir/ir_map.cpp.o.d"
  "CMakeFiles/ppdl_analysis.dir/ir_solver.cpp.o"
  "CMakeFiles/ppdl_analysis.dir/ir_solver.cpp.o.d"
  "CMakeFiles/ppdl_analysis.dir/mna.cpp.o"
  "CMakeFiles/ppdl_analysis.dir/mna.cpp.o.d"
  "CMakeFiles/ppdl_analysis.dir/vectorless.cpp.o"
  "CMakeFiles/ppdl_analysis.dir/vectorless.cpp.o.d"
  "libppdl_analysis.a"
  "libppdl_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppdl_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
