file(REMOVE_RECURSE
  "libppdl_analysis.a"
)
