
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/cg.cpp" "src/linalg/CMakeFiles/ppdl_linalg.dir/cg.cpp.o" "gcc" "src/linalg/CMakeFiles/ppdl_linalg.dir/cg.cpp.o.d"
  "/root/repo/src/linalg/cholesky.cpp" "src/linalg/CMakeFiles/ppdl_linalg.dir/cholesky.cpp.o" "gcc" "src/linalg/CMakeFiles/ppdl_linalg.dir/cholesky.cpp.o.d"
  "/root/repo/src/linalg/coo.cpp" "src/linalg/CMakeFiles/ppdl_linalg.dir/coo.cpp.o" "gcc" "src/linalg/CMakeFiles/ppdl_linalg.dir/coo.cpp.o.d"
  "/root/repo/src/linalg/csr.cpp" "src/linalg/CMakeFiles/ppdl_linalg.dir/csr.cpp.o" "gcc" "src/linalg/CMakeFiles/ppdl_linalg.dir/csr.cpp.o.d"
  "/root/repo/src/linalg/dense.cpp" "src/linalg/CMakeFiles/ppdl_linalg.dir/dense.cpp.o" "gcc" "src/linalg/CMakeFiles/ppdl_linalg.dir/dense.cpp.o.d"
  "/root/repo/src/linalg/ordering.cpp" "src/linalg/CMakeFiles/ppdl_linalg.dir/ordering.cpp.o" "gcc" "src/linalg/CMakeFiles/ppdl_linalg.dir/ordering.cpp.o.d"
  "/root/repo/src/linalg/preconditioner.cpp" "src/linalg/CMakeFiles/ppdl_linalg.dir/preconditioner.cpp.o" "gcc" "src/linalg/CMakeFiles/ppdl_linalg.dir/preconditioner.cpp.o.d"
  "/root/repo/src/linalg/vector_ops.cpp" "src/linalg/CMakeFiles/ppdl_linalg.dir/vector_ops.cpp.o" "gcc" "src/linalg/CMakeFiles/ppdl_linalg.dir/vector_ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ppdl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
