file(REMOVE_RECURSE
  "CMakeFiles/ppdl_linalg.dir/cg.cpp.o"
  "CMakeFiles/ppdl_linalg.dir/cg.cpp.o.d"
  "CMakeFiles/ppdl_linalg.dir/cholesky.cpp.o"
  "CMakeFiles/ppdl_linalg.dir/cholesky.cpp.o.d"
  "CMakeFiles/ppdl_linalg.dir/coo.cpp.o"
  "CMakeFiles/ppdl_linalg.dir/coo.cpp.o.d"
  "CMakeFiles/ppdl_linalg.dir/csr.cpp.o"
  "CMakeFiles/ppdl_linalg.dir/csr.cpp.o.d"
  "CMakeFiles/ppdl_linalg.dir/dense.cpp.o"
  "CMakeFiles/ppdl_linalg.dir/dense.cpp.o.d"
  "CMakeFiles/ppdl_linalg.dir/ordering.cpp.o"
  "CMakeFiles/ppdl_linalg.dir/ordering.cpp.o.d"
  "CMakeFiles/ppdl_linalg.dir/preconditioner.cpp.o"
  "CMakeFiles/ppdl_linalg.dir/preconditioner.cpp.o.d"
  "CMakeFiles/ppdl_linalg.dir/vector_ops.cpp.o"
  "CMakeFiles/ppdl_linalg.dir/vector_ops.cpp.o.d"
  "libppdl_linalg.a"
  "libppdl_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppdl_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
