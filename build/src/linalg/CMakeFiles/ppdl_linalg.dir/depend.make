# Empty dependencies file for ppdl_linalg.
# This may be replaced when dependencies are built.
