file(REMOVE_RECURSE
  "libppdl_linalg.a"
)
