file(REMOVE_RECURSE
  "CMakeFiles/ppdl_core.dir/benchmarks.cpp.o"
  "CMakeFiles/ppdl_core.dir/benchmarks.cpp.o.d"
  "CMakeFiles/ppdl_core.dir/dataset.cpp.o"
  "CMakeFiles/ppdl_core.dir/dataset.cpp.o.d"
  "CMakeFiles/ppdl_core.dir/experiments.cpp.o"
  "CMakeFiles/ppdl_core.dir/experiments.cpp.o.d"
  "CMakeFiles/ppdl_core.dir/features.cpp.o"
  "CMakeFiles/ppdl_core.dir/features.cpp.o.d"
  "CMakeFiles/ppdl_core.dir/flow.cpp.o"
  "CMakeFiles/ppdl_core.dir/flow.cpp.o.d"
  "CMakeFiles/ppdl_core.dir/ir_predictor.cpp.o"
  "CMakeFiles/ppdl_core.dir/ir_predictor.cpp.o.d"
  "CMakeFiles/ppdl_core.dir/ppdl_model.cpp.o"
  "CMakeFiles/ppdl_core.dir/ppdl_model.cpp.o.d"
  "libppdl_core.a"
  "libppdl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppdl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
