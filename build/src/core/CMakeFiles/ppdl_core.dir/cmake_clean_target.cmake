file(REMOVE_RECURSE
  "libppdl_core.a"
)
