file(REMOVE_RECURSE
  "libppdl_robust.a"
)
