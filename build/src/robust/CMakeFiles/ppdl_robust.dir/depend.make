# Empty dependencies file for ppdl_robust.
# This may be replaced when dependencies are built.
