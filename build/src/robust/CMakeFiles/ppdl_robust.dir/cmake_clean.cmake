file(REMOVE_RECURSE
  "CMakeFiles/ppdl_robust.dir/solve.cpp.o"
  "CMakeFiles/ppdl_robust.dir/solve.cpp.o.d"
  "libppdl_robust.a"
  "libppdl_robust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppdl_robust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
