file(REMOVE_RECURSE
  "CMakeFiles/ppdl_common.dir/check.cpp.o"
  "CMakeFiles/ppdl_common.dir/check.cpp.o.d"
  "CMakeFiles/ppdl_common.dir/cli.cpp.o"
  "CMakeFiles/ppdl_common.dir/cli.cpp.o.d"
  "CMakeFiles/ppdl_common.dir/csv.cpp.o"
  "CMakeFiles/ppdl_common.dir/csv.cpp.o.d"
  "CMakeFiles/ppdl_common.dir/logging.cpp.o"
  "CMakeFiles/ppdl_common.dir/logging.cpp.o.d"
  "CMakeFiles/ppdl_common.dir/memory.cpp.o"
  "CMakeFiles/ppdl_common.dir/memory.cpp.o.d"
  "CMakeFiles/ppdl_common.dir/rng.cpp.o"
  "CMakeFiles/ppdl_common.dir/rng.cpp.o.d"
  "CMakeFiles/ppdl_common.dir/stats.cpp.o"
  "CMakeFiles/ppdl_common.dir/stats.cpp.o.d"
  "CMakeFiles/ppdl_common.dir/table.cpp.o"
  "CMakeFiles/ppdl_common.dir/table.cpp.o.d"
  "CMakeFiles/ppdl_common.dir/timer.cpp.o"
  "CMakeFiles/ppdl_common.dir/timer.cpp.o.d"
  "libppdl_common.a"
  "libppdl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppdl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
