file(REMOVE_RECURSE
  "libppdl_common.a"
)
