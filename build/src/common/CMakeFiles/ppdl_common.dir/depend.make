# Empty dependencies file for ppdl_common.
# This may be replaced when dependencies are built.
