
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grid/design_rules.cpp" "src/grid/CMakeFiles/ppdl_grid.dir/design_rules.cpp.o" "gcc" "src/grid/CMakeFiles/ppdl_grid.dir/design_rules.cpp.o.d"
  "/root/repo/src/grid/floorplan.cpp" "src/grid/CMakeFiles/ppdl_grid.dir/floorplan.cpp.o" "gcc" "src/grid/CMakeFiles/ppdl_grid.dir/floorplan.cpp.o.d"
  "/root/repo/src/grid/generator.cpp" "src/grid/CMakeFiles/ppdl_grid.dir/generator.cpp.o" "gcc" "src/grid/CMakeFiles/ppdl_grid.dir/generator.cpp.o.d"
  "/root/repo/src/grid/netlist.cpp" "src/grid/CMakeFiles/ppdl_grid.dir/netlist.cpp.o" "gcc" "src/grid/CMakeFiles/ppdl_grid.dir/netlist.cpp.o.d"
  "/root/repo/src/grid/perturb.cpp" "src/grid/CMakeFiles/ppdl_grid.dir/perturb.cpp.o" "gcc" "src/grid/CMakeFiles/ppdl_grid.dir/perturb.cpp.o.d"
  "/root/repo/src/grid/power_grid.cpp" "src/grid/CMakeFiles/ppdl_grid.dir/power_grid.cpp.o" "gcc" "src/grid/CMakeFiles/ppdl_grid.dir/power_grid.cpp.o.d"
  "/root/repo/src/grid/validate.cpp" "src/grid/CMakeFiles/ppdl_grid.dir/validate.cpp.o" "gcc" "src/grid/CMakeFiles/ppdl_grid.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ppdl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
