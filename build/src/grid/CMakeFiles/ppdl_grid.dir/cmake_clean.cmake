file(REMOVE_RECURSE
  "CMakeFiles/ppdl_grid.dir/design_rules.cpp.o"
  "CMakeFiles/ppdl_grid.dir/design_rules.cpp.o.d"
  "CMakeFiles/ppdl_grid.dir/floorplan.cpp.o"
  "CMakeFiles/ppdl_grid.dir/floorplan.cpp.o.d"
  "CMakeFiles/ppdl_grid.dir/generator.cpp.o"
  "CMakeFiles/ppdl_grid.dir/generator.cpp.o.d"
  "CMakeFiles/ppdl_grid.dir/netlist.cpp.o"
  "CMakeFiles/ppdl_grid.dir/netlist.cpp.o.d"
  "CMakeFiles/ppdl_grid.dir/perturb.cpp.o"
  "CMakeFiles/ppdl_grid.dir/perturb.cpp.o.d"
  "CMakeFiles/ppdl_grid.dir/power_grid.cpp.o"
  "CMakeFiles/ppdl_grid.dir/power_grid.cpp.o.d"
  "CMakeFiles/ppdl_grid.dir/validate.cpp.o"
  "CMakeFiles/ppdl_grid.dir/validate.cpp.o.d"
  "libppdl_grid.a"
  "libppdl_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppdl_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
