# Empty compiler generated dependencies file for ppdl_grid.
# This may be replaced when dependencies are built.
