file(REMOVE_RECURSE
  "libppdl_grid.a"
)
