file(REMOVE_RECURSE
  "libppdl_nn.a"
)
