# Empty dependencies file for ppdl_nn.
# This may be replaced when dependencies are built.
