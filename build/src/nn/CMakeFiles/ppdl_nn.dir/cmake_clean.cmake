file(REMOVE_RECURSE
  "CMakeFiles/ppdl_nn.dir/activation.cpp.o"
  "CMakeFiles/ppdl_nn.dir/activation.cpp.o.d"
  "CMakeFiles/ppdl_nn.dir/layer.cpp.o"
  "CMakeFiles/ppdl_nn.dir/layer.cpp.o.d"
  "CMakeFiles/ppdl_nn.dir/loss.cpp.o"
  "CMakeFiles/ppdl_nn.dir/loss.cpp.o.d"
  "CMakeFiles/ppdl_nn.dir/mlp.cpp.o"
  "CMakeFiles/ppdl_nn.dir/mlp.cpp.o.d"
  "CMakeFiles/ppdl_nn.dir/model_io.cpp.o"
  "CMakeFiles/ppdl_nn.dir/model_io.cpp.o.d"
  "CMakeFiles/ppdl_nn.dir/optimizer.cpp.o"
  "CMakeFiles/ppdl_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/ppdl_nn.dir/scaler.cpp.o"
  "CMakeFiles/ppdl_nn.dir/scaler.cpp.o.d"
  "CMakeFiles/ppdl_nn.dir/trainer.cpp.o"
  "CMakeFiles/ppdl_nn.dir/trainer.cpp.o.d"
  "libppdl_nn.a"
  "libppdl_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppdl_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
