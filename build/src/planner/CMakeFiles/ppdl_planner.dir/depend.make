# Empty dependencies file for ppdl_planner.
# This may be replaced when dependencies are built.
