file(REMOVE_RECURSE
  "libppdl_planner.a"
)
