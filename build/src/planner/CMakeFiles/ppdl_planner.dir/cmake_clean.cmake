file(REMOVE_RECURSE
  "CMakeFiles/ppdl_planner.dir/conventional_planner.cpp.o"
  "CMakeFiles/ppdl_planner.dir/conventional_planner.cpp.o.d"
  "CMakeFiles/ppdl_planner.dir/sign_off.cpp.o"
  "CMakeFiles/ppdl_planner.dir/sign_off.cpp.o.d"
  "CMakeFiles/ppdl_planner.dir/width_optimizer.cpp.o"
  "CMakeFiles/ppdl_planner.dir/width_optimizer.cpp.o.d"
  "libppdl_planner.a"
  "libppdl_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppdl_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
