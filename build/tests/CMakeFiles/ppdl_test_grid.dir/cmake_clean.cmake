file(REMOVE_RECURSE
  "CMakeFiles/ppdl_test_grid.dir/grid/test_design_rules.cpp.o"
  "CMakeFiles/ppdl_test_grid.dir/grid/test_design_rules.cpp.o.d"
  "CMakeFiles/ppdl_test_grid.dir/grid/test_floorplan.cpp.o"
  "CMakeFiles/ppdl_test_grid.dir/grid/test_floorplan.cpp.o.d"
  "CMakeFiles/ppdl_test_grid.dir/grid/test_generator.cpp.o"
  "CMakeFiles/ppdl_test_grid.dir/grid/test_generator.cpp.o.d"
  "CMakeFiles/ppdl_test_grid.dir/grid/test_geometry.cpp.o"
  "CMakeFiles/ppdl_test_grid.dir/grid/test_geometry.cpp.o.d"
  "CMakeFiles/ppdl_test_grid.dir/grid/test_netlist.cpp.o"
  "CMakeFiles/ppdl_test_grid.dir/grid/test_netlist.cpp.o.d"
  "CMakeFiles/ppdl_test_grid.dir/grid/test_perturb.cpp.o"
  "CMakeFiles/ppdl_test_grid.dir/grid/test_perturb.cpp.o.d"
  "CMakeFiles/ppdl_test_grid.dir/grid/test_power_grid.cpp.o"
  "CMakeFiles/ppdl_test_grid.dir/grid/test_power_grid.cpp.o.d"
  "ppdl_test_grid"
  "ppdl_test_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppdl_test_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
