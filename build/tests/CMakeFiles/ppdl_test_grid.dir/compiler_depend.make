# Empty compiler generated dependencies file for ppdl_test_grid.
# This may be replaced when dependencies are built.
