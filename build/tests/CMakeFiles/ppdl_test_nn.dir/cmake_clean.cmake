file(REMOVE_RECURSE
  "CMakeFiles/ppdl_test_nn.dir/nn/test_activation.cpp.o"
  "CMakeFiles/ppdl_test_nn.dir/nn/test_activation.cpp.o.d"
  "CMakeFiles/ppdl_test_nn.dir/nn/test_layer.cpp.o"
  "CMakeFiles/ppdl_test_nn.dir/nn/test_layer.cpp.o.d"
  "CMakeFiles/ppdl_test_nn.dir/nn/test_loss.cpp.o"
  "CMakeFiles/ppdl_test_nn.dir/nn/test_loss.cpp.o.d"
  "CMakeFiles/ppdl_test_nn.dir/nn/test_mlp.cpp.o"
  "CMakeFiles/ppdl_test_nn.dir/nn/test_mlp.cpp.o.d"
  "CMakeFiles/ppdl_test_nn.dir/nn/test_model_io.cpp.o"
  "CMakeFiles/ppdl_test_nn.dir/nn/test_model_io.cpp.o.d"
  "CMakeFiles/ppdl_test_nn.dir/nn/test_optimizer.cpp.o"
  "CMakeFiles/ppdl_test_nn.dir/nn/test_optimizer.cpp.o.d"
  "CMakeFiles/ppdl_test_nn.dir/nn/test_scaler.cpp.o"
  "CMakeFiles/ppdl_test_nn.dir/nn/test_scaler.cpp.o.d"
  "CMakeFiles/ppdl_test_nn.dir/nn/test_trainer.cpp.o"
  "CMakeFiles/ppdl_test_nn.dir/nn/test_trainer.cpp.o.d"
  "ppdl_test_nn"
  "ppdl_test_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppdl_test_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
