
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nn/test_activation.cpp" "tests/CMakeFiles/ppdl_test_nn.dir/nn/test_activation.cpp.o" "gcc" "tests/CMakeFiles/ppdl_test_nn.dir/nn/test_activation.cpp.o.d"
  "/root/repo/tests/nn/test_layer.cpp" "tests/CMakeFiles/ppdl_test_nn.dir/nn/test_layer.cpp.o" "gcc" "tests/CMakeFiles/ppdl_test_nn.dir/nn/test_layer.cpp.o.d"
  "/root/repo/tests/nn/test_loss.cpp" "tests/CMakeFiles/ppdl_test_nn.dir/nn/test_loss.cpp.o" "gcc" "tests/CMakeFiles/ppdl_test_nn.dir/nn/test_loss.cpp.o.d"
  "/root/repo/tests/nn/test_mlp.cpp" "tests/CMakeFiles/ppdl_test_nn.dir/nn/test_mlp.cpp.o" "gcc" "tests/CMakeFiles/ppdl_test_nn.dir/nn/test_mlp.cpp.o.d"
  "/root/repo/tests/nn/test_model_io.cpp" "tests/CMakeFiles/ppdl_test_nn.dir/nn/test_model_io.cpp.o" "gcc" "tests/CMakeFiles/ppdl_test_nn.dir/nn/test_model_io.cpp.o.d"
  "/root/repo/tests/nn/test_optimizer.cpp" "tests/CMakeFiles/ppdl_test_nn.dir/nn/test_optimizer.cpp.o" "gcc" "tests/CMakeFiles/ppdl_test_nn.dir/nn/test_optimizer.cpp.o.d"
  "/root/repo/tests/nn/test_scaler.cpp" "tests/CMakeFiles/ppdl_test_nn.dir/nn/test_scaler.cpp.o" "gcc" "tests/CMakeFiles/ppdl_test_nn.dir/nn/test_scaler.cpp.o.d"
  "/root/repo/tests/nn/test_trainer.cpp" "tests/CMakeFiles/ppdl_test_nn.dir/nn/test_trainer.cpp.o" "gcc" "tests/CMakeFiles/ppdl_test_nn.dir/nn/test_trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ppdl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/planner/CMakeFiles/ppdl_planner.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ppdl_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/robust/CMakeFiles/ppdl_robust.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ppdl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/ppdl_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ppdl_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ppdl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
