# Empty dependencies file for ppdl_test_planner.
# This may be replaced when dependencies are built.
