file(REMOVE_RECURSE
  "CMakeFiles/ppdl_test_planner.dir/planner/test_conventional_planner.cpp.o"
  "CMakeFiles/ppdl_test_planner.dir/planner/test_conventional_planner.cpp.o.d"
  "CMakeFiles/ppdl_test_planner.dir/planner/test_sign_off.cpp.o"
  "CMakeFiles/ppdl_test_planner.dir/planner/test_sign_off.cpp.o.d"
  "CMakeFiles/ppdl_test_planner.dir/planner/test_width_optimizer.cpp.o"
  "CMakeFiles/ppdl_test_planner.dir/planner/test_width_optimizer.cpp.o.d"
  "ppdl_test_planner"
  "ppdl_test_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppdl_test_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
