file(REMOVE_RECURSE
  "CMakeFiles/ppdl_test_analysis.dir/analysis/test_dual_rail.cpp.o"
  "CMakeFiles/ppdl_test_analysis.dir/analysis/test_dual_rail.cpp.o.d"
  "CMakeFiles/ppdl_test_analysis.dir/analysis/test_em.cpp.o"
  "CMakeFiles/ppdl_test_analysis.dir/analysis/test_em.cpp.o.d"
  "CMakeFiles/ppdl_test_analysis.dir/analysis/test_ir_map.cpp.o"
  "CMakeFiles/ppdl_test_analysis.dir/analysis/test_ir_map.cpp.o.d"
  "CMakeFiles/ppdl_test_analysis.dir/analysis/test_ir_solver.cpp.o"
  "CMakeFiles/ppdl_test_analysis.dir/analysis/test_ir_solver.cpp.o.d"
  "CMakeFiles/ppdl_test_analysis.dir/analysis/test_mna.cpp.o"
  "CMakeFiles/ppdl_test_analysis.dir/analysis/test_mna.cpp.o.d"
  "CMakeFiles/ppdl_test_analysis.dir/analysis/test_vectorless.cpp.o"
  "CMakeFiles/ppdl_test_analysis.dir/analysis/test_vectorless.cpp.o.d"
  "ppdl_test_analysis"
  "ppdl_test_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppdl_test_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
