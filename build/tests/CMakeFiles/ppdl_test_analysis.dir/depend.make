# Empty dependencies file for ppdl_test_analysis.
# This may be replaced when dependencies are built.
