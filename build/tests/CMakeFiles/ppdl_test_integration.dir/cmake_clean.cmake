file(REMOVE_RECURSE
  "CMakeFiles/ppdl_test_integration.dir/integration/test_cross_validation.cpp.o"
  "CMakeFiles/ppdl_test_integration.dir/integration/test_cross_validation.cpp.o.d"
  "CMakeFiles/ppdl_test_integration.dir/integration/test_end_to_end.cpp.o"
  "CMakeFiles/ppdl_test_integration.dir/integration/test_end_to_end.cpp.o.d"
  "CMakeFiles/ppdl_test_integration.dir/integration/test_properties.cpp.o"
  "CMakeFiles/ppdl_test_integration.dir/integration/test_properties.cpp.o.d"
  "ppdl_test_integration"
  "ppdl_test_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppdl_test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
