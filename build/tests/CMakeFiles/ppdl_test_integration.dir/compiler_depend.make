# Empty compiler generated dependencies file for ppdl_test_integration.
# This may be replaced when dependencies are built.
