
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/test_check.cpp" "tests/CMakeFiles/ppdl_test_common.dir/common/test_check.cpp.o" "gcc" "tests/CMakeFiles/ppdl_test_common.dir/common/test_check.cpp.o.d"
  "/root/repo/tests/common/test_cli.cpp" "tests/CMakeFiles/ppdl_test_common.dir/common/test_cli.cpp.o" "gcc" "tests/CMakeFiles/ppdl_test_common.dir/common/test_cli.cpp.o.d"
  "/root/repo/tests/common/test_csv.cpp" "tests/CMakeFiles/ppdl_test_common.dir/common/test_csv.cpp.o" "gcc" "tests/CMakeFiles/ppdl_test_common.dir/common/test_csv.cpp.o.d"
  "/root/repo/tests/common/test_memory.cpp" "tests/CMakeFiles/ppdl_test_common.dir/common/test_memory.cpp.o" "gcc" "tests/CMakeFiles/ppdl_test_common.dir/common/test_memory.cpp.o.d"
  "/root/repo/tests/common/test_rng.cpp" "tests/CMakeFiles/ppdl_test_common.dir/common/test_rng.cpp.o" "gcc" "tests/CMakeFiles/ppdl_test_common.dir/common/test_rng.cpp.o.d"
  "/root/repo/tests/common/test_stats.cpp" "tests/CMakeFiles/ppdl_test_common.dir/common/test_stats.cpp.o" "gcc" "tests/CMakeFiles/ppdl_test_common.dir/common/test_stats.cpp.o.d"
  "/root/repo/tests/common/test_table.cpp" "tests/CMakeFiles/ppdl_test_common.dir/common/test_table.cpp.o" "gcc" "tests/CMakeFiles/ppdl_test_common.dir/common/test_table.cpp.o.d"
  "/root/repo/tests/common/test_timer.cpp" "tests/CMakeFiles/ppdl_test_common.dir/common/test_timer.cpp.o" "gcc" "tests/CMakeFiles/ppdl_test_common.dir/common/test_timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ppdl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/planner/CMakeFiles/ppdl_planner.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ppdl_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/robust/CMakeFiles/ppdl_robust.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ppdl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/ppdl_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ppdl_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ppdl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
