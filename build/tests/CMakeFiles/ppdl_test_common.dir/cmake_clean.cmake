file(REMOVE_RECURSE
  "CMakeFiles/ppdl_test_common.dir/common/test_check.cpp.o"
  "CMakeFiles/ppdl_test_common.dir/common/test_check.cpp.o.d"
  "CMakeFiles/ppdl_test_common.dir/common/test_cli.cpp.o"
  "CMakeFiles/ppdl_test_common.dir/common/test_cli.cpp.o.d"
  "CMakeFiles/ppdl_test_common.dir/common/test_csv.cpp.o"
  "CMakeFiles/ppdl_test_common.dir/common/test_csv.cpp.o.d"
  "CMakeFiles/ppdl_test_common.dir/common/test_memory.cpp.o"
  "CMakeFiles/ppdl_test_common.dir/common/test_memory.cpp.o.d"
  "CMakeFiles/ppdl_test_common.dir/common/test_rng.cpp.o"
  "CMakeFiles/ppdl_test_common.dir/common/test_rng.cpp.o.d"
  "CMakeFiles/ppdl_test_common.dir/common/test_stats.cpp.o"
  "CMakeFiles/ppdl_test_common.dir/common/test_stats.cpp.o.d"
  "CMakeFiles/ppdl_test_common.dir/common/test_table.cpp.o"
  "CMakeFiles/ppdl_test_common.dir/common/test_table.cpp.o.d"
  "CMakeFiles/ppdl_test_common.dir/common/test_timer.cpp.o"
  "CMakeFiles/ppdl_test_common.dir/common/test_timer.cpp.o.d"
  "ppdl_test_common"
  "ppdl_test_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppdl_test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
