# Empty compiler generated dependencies file for ppdl_test_common.
# This may be replaced when dependencies are built.
