# Empty dependencies file for ppdl_test_robust.
# This may be replaced when dependencies are built.
