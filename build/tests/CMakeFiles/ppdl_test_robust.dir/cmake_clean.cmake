file(REMOVE_RECURSE
  "CMakeFiles/ppdl_test_robust.dir/robust/test_escalation.cpp.o"
  "CMakeFiles/ppdl_test_robust.dir/robust/test_escalation.cpp.o.d"
  "CMakeFiles/ppdl_test_robust.dir/robust/test_fault_integration.cpp.o"
  "CMakeFiles/ppdl_test_robust.dir/robust/test_fault_integration.cpp.o.d"
  "CMakeFiles/ppdl_test_robust.dir/robust/test_grid_validate.cpp.o"
  "CMakeFiles/ppdl_test_robust.dir/robust/test_grid_validate.cpp.o.d"
  "CMakeFiles/ppdl_test_robust.dir/robust/test_trainer_recovery.cpp.o"
  "CMakeFiles/ppdl_test_robust.dir/robust/test_trainer_recovery.cpp.o.d"
  "ppdl_test_robust"
  "ppdl_test_robust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppdl_test_robust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
