file(REMOVE_RECURSE
  "CMakeFiles/ppdl_test_linalg.dir/linalg/test_cg.cpp.o"
  "CMakeFiles/ppdl_test_linalg.dir/linalg/test_cg.cpp.o.d"
  "CMakeFiles/ppdl_test_linalg.dir/linalg/test_cholesky.cpp.o"
  "CMakeFiles/ppdl_test_linalg.dir/linalg/test_cholesky.cpp.o.d"
  "CMakeFiles/ppdl_test_linalg.dir/linalg/test_coo_csr.cpp.o"
  "CMakeFiles/ppdl_test_linalg.dir/linalg/test_coo_csr.cpp.o.d"
  "CMakeFiles/ppdl_test_linalg.dir/linalg/test_dense.cpp.o"
  "CMakeFiles/ppdl_test_linalg.dir/linalg/test_dense.cpp.o.d"
  "CMakeFiles/ppdl_test_linalg.dir/linalg/test_ordering.cpp.o"
  "CMakeFiles/ppdl_test_linalg.dir/linalg/test_ordering.cpp.o.d"
  "CMakeFiles/ppdl_test_linalg.dir/linalg/test_preconditioner.cpp.o"
  "CMakeFiles/ppdl_test_linalg.dir/linalg/test_preconditioner.cpp.o.d"
  "CMakeFiles/ppdl_test_linalg.dir/linalg/test_vector_ops.cpp.o"
  "CMakeFiles/ppdl_test_linalg.dir/linalg/test_vector_ops.cpp.o.d"
  "ppdl_test_linalg"
  "ppdl_test_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppdl_test_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
