# Empty dependencies file for ppdl_test_linalg.
# This may be replaced when dependencies are built.
