
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_benchmarks.cpp" "tests/CMakeFiles/ppdl_test_core.dir/core/test_benchmarks.cpp.o" "gcc" "tests/CMakeFiles/ppdl_test_core.dir/core/test_benchmarks.cpp.o.d"
  "/root/repo/tests/core/test_dataset.cpp" "tests/CMakeFiles/ppdl_test_core.dir/core/test_dataset.cpp.o" "gcc" "tests/CMakeFiles/ppdl_test_core.dir/core/test_dataset.cpp.o.d"
  "/root/repo/tests/core/test_features.cpp" "tests/CMakeFiles/ppdl_test_core.dir/core/test_features.cpp.o" "gcc" "tests/CMakeFiles/ppdl_test_core.dir/core/test_features.cpp.o.d"
  "/root/repo/tests/core/test_flow.cpp" "tests/CMakeFiles/ppdl_test_core.dir/core/test_flow.cpp.o" "gcc" "tests/CMakeFiles/ppdl_test_core.dir/core/test_flow.cpp.o.d"
  "/root/repo/tests/core/test_ir_predictor.cpp" "tests/CMakeFiles/ppdl_test_core.dir/core/test_ir_predictor.cpp.o" "gcc" "tests/CMakeFiles/ppdl_test_core.dir/core/test_ir_predictor.cpp.o.d"
  "/root/repo/tests/core/test_ppdl_model.cpp" "tests/CMakeFiles/ppdl_test_core.dir/core/test_ppdl_model.cpp.o" "gcc" "tests/CMakeFiles/ppdl_test_core.dir/core/test_ppdl_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ppdl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/planner/CMakeFiles/ppdl_planner.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ppdl_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/robust/CMakeFiles/ppdl_robust.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ppdl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/ppdl_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ppdl_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ppdl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
