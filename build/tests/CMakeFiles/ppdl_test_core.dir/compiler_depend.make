# Empty compiler generated dependencies file for ppdl_test_core.
# This may be replaced when dependencies are built.
