file(REMOVE_RECURSE
  "CMakeFiles/ppdl_test_core.dir/core/test_benchmarks.cpp.o"
  "CMakeFiles/ppdl_test_core.dir/core/test_benchmarks.cpp.o.d"
  "CMakeFiles/ppdl_test_core.dir/core/test_dataset.cpp.o"
  "CMakeFiles/ppdl_test_core.dir/core/test_dataset.cpp.o.d"
  "CMakeFiles/ppdl_test_core.dir/core/test_features.cpp.o"
  "CMakeFiles/ppdl_test_core.dir/core/test_features.cpp.o.d"
  "CMakeFiles/ppdl_test_core.dir/core/test_flow.cpp.o"
  "CMakeFiles/ppdl_test_core.dir/core/test_flow.cpp.o.d"
  "CMakeFiles/ppdl_test_core.dir/core/test_ir_predictor.cpp.o"
  "CMakeFiles/ppdl_test_core.dir/core/test_ir_predictor.cpp.o.d"
  "CMakeFiles/ppdl_test_core.dir/core/test_ppdl_model.cpp.o"
  "CMakeFiles/ppdl_test_core.dir/core/test_ppdl_model.cpp.o.d"
  "ppdl_test_core"
  "ppdl_test_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppdl_test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
