# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(ppdl_test_common "/root/repo/build/tests/ppdl_test_common")
set_tests_properties(ppdl_test_common PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;13;ppdl_add_test_binary;/root/repo/tests/CMakeLists.txt;0;")
add_test(ppdl_test_linalg "/root/repo/build/tests/ppdl_test_linalg")
set_tests_properties(ppdl_test_linalg PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;24;ppdl_add_test_binary;/root/repo/tests/CMakeLists.txt;0;")
add_test(ppdl_test_grid "/root/repo/build/tests/ppdl_test_grid")
set_tests_properties(ppdl_test_grid PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;34;ppdl_add_test_binary;/root/repo/tests/CMakeLists.txt;0;")
add_test(ppdl_test_analysis "/root/repo/build/tests/ppdl_test_analysis")
set_tests_properties(ppdl_test_analysis PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;44;ppdl_add_test_binary;/root/repo/tests/CMakeLists.txt;0;")
add_test(ppdl_test_planner "/root/repo/build/tests/ppdl_test_planner")
set_tests_properties(ppdl_test_planner PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;53;ppdl_add_test_binary;/root/repo/tests/CMakeLists.txt;0;")
add_test(ppdl_test_nn "/root/repo/build/tests/ppdl_test_nn")
set_tests_properties(ppdl_test_nn PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;59;ppdl_add_test_binary;/root/repo/tests/CMakeLists.txt;0;")
add_test(ppdl_test_core "/root/repo/build/tests/ppdl_test_core")
set_tests_properties(ppdl_test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;70;ppdl_add_test_binary;/root/repo/tests/CMakeLists.txt;0;")
add_test(ppdl_test_integration "/root/repo/build/tests/ppdl_test_integration")
set_tests_properties(ppdl_test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;79;ppdl_add_test_binary;/root/repo/tests/CMakeLists.txt;0;")
add_test(ppdl_test_robust "/root/repo/build/tests/ppdl_test_robust")
set_tests_properties(ppdl_test_robust PROPERTIES  LABELS "robustness" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;86;ppdl_add_test_binary;/root/repo/tests/CMakeLists.txt;0;")
