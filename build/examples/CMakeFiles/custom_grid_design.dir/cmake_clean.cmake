file(REMOVE_RECURSE
  "CMakeFiles/custom_grid_design.dir/custom_grid_design.cpp.o"
  "CMakeFiles/custom_grid_design.dir/custom_grid_design.cpp.o.d"
  "custom_grid_design"
  "custom_grid_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_grid_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
