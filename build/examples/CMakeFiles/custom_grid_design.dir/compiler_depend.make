# Empty compiler generated dependencies file for custom_grid_design.
# This may be replaced when dependencies are built.
