file(REMOVE_RECURSE
  "CMakeFiles/incremental_redesign.dir/incremental_redesign.cpp.o"
  "CMakeFiles/incremental_redesign.dir/incremental_redesign.cpp.o.d"
  "incremental_redesign"
  "incremental_redesign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_redesign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
