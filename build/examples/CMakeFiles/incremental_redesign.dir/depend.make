# Empty dependencies file for incremental_redesign.
# This may be replaced when dependencies are built.
