file(REMOVE_RECURSE
  "CMakeFiles/netlist_analysis.dir/netlist_analysis.cpp.o"
  "CMakeFiles/netlist_analysis.dir/netlist_analysis.cpp.o.d"
  "netlist_analysis"
  "netlist_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netlist_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
