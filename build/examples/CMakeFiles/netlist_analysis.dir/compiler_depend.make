# Empty compiler generated dependencies file for netlist_analysis.
# This may be replaced when dependencies are built.
