file(REMOVE_RECURSE
  "CMakeFiles/em_signoff.dir/em_signoff.cpp.o"
  "CMakeFiles/em_signoff.dir/em_signoff.cpp.o.d"
  "em_signoff"
  "em_signoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/em_signoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
