# Empty compiler generated dependencies file for em_signoff.
# This may be replaced when dependencies are built.
