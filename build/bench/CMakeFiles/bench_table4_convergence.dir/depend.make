# Empty dependencies file for bench_table4_convergence.
# This may be replaced when dependencies are built.
