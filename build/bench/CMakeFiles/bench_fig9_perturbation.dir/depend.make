# Empty dependencies file for bench_fig9_perturbation.
# This may be replaced when dependencies are built.
