file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_perturbation.dir/bench_fig9_perturbation.cpp.o"
  "CMakeFiles/bench_fig9_perturbation.dir/bench_fig9_perturbation.cpp.o.d"
  "bench_fig9_perturbation"
  "bench_fig9_perturbation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_perturbation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
