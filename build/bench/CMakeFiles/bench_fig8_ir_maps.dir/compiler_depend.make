# Empty compiler generated dependencies file for bench_fig8_ir_maps.
# This may be replaced when dependencies are built.
