file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_ir_maps.dir/bench_fig8_ir_maps.cpp.o"
  "CMakeFiles/bench_fig8_ir_maps.dir/bench_fig8_ir_maps.cpp.o.d"
  "bench_fig8_ir_maps"
  "bench_fig8_ir_maps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_ir_maps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
