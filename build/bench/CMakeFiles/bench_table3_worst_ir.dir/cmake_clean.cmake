file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_worst_ir.dir/bench_table3_worst_ir.cpp.o"
  "CMakeFiles/bench_table3_worst_ir.dir/bench_table3_worst_ir.cpp.o.d"
  "bench_table3_worst_ir"
  "bench_table3_worst_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_worst_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
