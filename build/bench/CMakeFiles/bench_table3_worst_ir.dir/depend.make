# Empty dependencies file for bench_table3_worst_ir.
# This may be replaced when dependencies are built.
