# Empty dependencies file for bench_fig7_width_scatter.
# This may be replaced when dependencies are built.
