
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7_width_scatter.cpp" "bench/CMakeFiles/bench_fig7_width_scatter.dir/bench_fig7_width_scatter.cpp.o" "gcc" "bench/CMakeFiles/bench_fig7_width_scatter.dir/bench_fig7_width_scatter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ppdl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/planner/CMakeFiles/ppdl_planner.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ppdl_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ppdl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/ppdl_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ppdl_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ppdl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/robust/CMakeFiles/ppdl_robust.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
