// ppdl_campaign — the scenario-campaign CLI.
//
// Supervisor mode (default): expand the scenario matrix, shard it across
// worker subprocesses (this same binary re-exec'd with --worker), retry
// failures with backoff, quarantine scenarios that keep failing, and merge
// everything into a ppdl.campaign_report JSON.
//
//   ./examples/ppdl_campaign --families=ibmpg1,ibmpg2 --scales=0.02
//       --perturbs=none,loads --modes=ir,em-mttf --shards=2
//       --dir=campaign_out
//
// Crash-resume: re-run with --resume after any interruption (a killed
// worker, a killed supervisor, a power cut) and the campaign completes
// without re-running finished scenarios, producing a report whose
// deterministic sections are byte-identical to an uninterrupted run.
//
// Worker mode (internal, spawned by the supervisor):
//   ppdl_campaign --worker --dir <dir> --manifest <shard-manifest>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/matrix.hpp"
#include "campaign/report.hpp"
#include "campaign/shard.hpp"
#include "campaign/supervisor.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"

using namespace ppdl;

namespace {

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream in(csv);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (!token.empty()) {
      out.push_back(token);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("ppdl_campaign",
                "run a fault-isolated scenario campaign (or one worker "
                "shard of it)");
  cli.add_flag("families", "comma list of benchmark families", "ibmpg1");
  cli.add_flag("scales", "comma list of grid scales", "0.02");
  cli.add_flag("seeds", "comma list of floorplan seeds", "1");
  cli.add_flag("perturbs",
               "comma list of perturbation kinds (none|loads|voltages|both|"
               "fault-dangling-pad|fault-open-vias)",
               "none");
  cli.add_flag("modes",
               "comma list of analysis modes (ir|vectorless|dual-rail|"
               "em-mttf)",
               "ir");
  cli.add_flag("seed", "campaign seed (keys every scenario's Rng stream)",
               "2020");
  cli.add_flag("gamma", "perturbation size for the electrical kinds", "0.10");
  cli.add_flag("dir", "campaign working directory", "campaign_out");
  cli.add_flag("name", "campaign name in the merged report", "campaign");
  cli.add_flag("shards", "worker processes per scheduling wave", "2");
  cli.add_flag("max-attempts", "attempts before a scenario is quarantined",
               "3");
  cli.add_flag("timeout", "per-scenario Deadline budget in seconds (0 = off)",
               "0");
  cli.add_flag("report", "merged report path (default <dir>/campaign_report"
               ".json)", "");
  cli.add_flag("baseline", "gate scenario values against this baseline", "");
  cli.add_flag("write-baseline", "record passing values as a new baseline",
               "");
  cli.add_flag("rel-tol", "relative tolerance for baseline gating", "1e-9");
  cli.add_switch("resume", "resume from the campaign checkpoint");
  cli.add_switch("in-process", "run shards in-process (no crash isolation)");
  cli.add_switch("worker", "internal: run one shard from --manifest");
  cli.add_flag("manifest", "internal: shard manifest path (worker mode)", "");
  try {
    cli.parse(argc, argv);
  } catch (const CliError& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
  if (cli.help_requested()) {
    return 0;
  }

  try {
    if (cli.get_bool("worker")) {
      if (cli.get("manifest").empty()) {
        std::cerr << "--worker requires --manifest\n";
        return 1;
      }
      return campaign::run_shard(cli.get("dir"), cli.get("manifest"));
    }

    campaign::CampaignConfig config;
    config.matrix.families = split_list(cli.get("families"));
    config.matrix.scales.clear();
    for (const std::string& s : split_list(cli.get("scales"))) {
      config.matrix.scales.push_back(std::stod(s));
    }
    config.matrix.floorplan_seeds.clear();
    for (const std::string& s : split_list(cli.get("seeds"))) {
      config.matrix.floorplan_seeds.push_back(
          static_cast<U64>(std::stoull(s)));
    }
    config.matrix.perturbations.clear();
    for (const std::string& s : split_list(cli.get("perturbs"))) {
      config.matrix.perturbations.push_back(campaign::parse_perturb_kind(s));
    }
    config.matrix.modes.clear();
    for (const std::string& s : split_list(cli.get("modes"))) {
      config.matrix.modes.push_back(campaign::parse_analysis_mode(s));
    }
    config.matrix.campaign_seed = static_cast<U64>(cli.get_int("seed"));
    config.matrix.gamma = cli.get_real("gamma");
    config.dir = cli.get("dir");
    config.name = cli.get("name");
    config.shards = cli.get_int("shards");
    config.max_attempts = cli.get_int("max-attempts");
    config.scenario_timeout_seconds = cli.get_real("timeout");
    config.resume = cli.get_bool("resume");
    config.report_path = cli.get("report");
    config.baseline_path = cli.get("baseline");
    config.write_baseline_path = cli.get("write-baseline");
    config.baseline_rel_tol = cli.get_real("rel-tol");
    if (!cli.get_bool("in-process")) {
      // Workers are this same binary re-exec'd in --worker mode.
      config.worker_command = {argv[0]};
    }

    const campaign::CampaignReport report = campaign::run_campaign(config);

    ConsoleTable t({"verdict", "count"});
    const auto counter = [&report](const char* name) -> Index {
      const auto it = report.counters.find(name);
      return it == report.counters.end() ? 0 : it->second;
    };
    t.add_row({"scenarios", std::to_string(counter("scenarios"))});
    t.add_row({"pass", std::to_string(counter("pass"))});
    t.add_row({"fail", std::to_string(counter("fail"))});
    t.add_row({"quarantined", std::to_string(counter("quarantined"))});
    t.print(std::cout);
    for (const auto& [id, entry] : report.scenarios) {
      if (entry.status != campaign::ScenarioStatus::kPass) {
        std::cout << "  " << to_string(entry.status) << "  " << id << ": "
                  << entry.error << "\n";
      }
    }
    // Quarantines never fail the campaign; baseline regressions do.
    return counter("fail") > 0 ? 2 : 0;
  } catch (const std::exception& e) {
    std::cerr << "ppdl_campaign: " << e.what() << "\n";
    return 1;
  }
}
