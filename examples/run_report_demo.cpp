// Run-report demo: run the end-to-end flow with observability on and emit
// the schema-versioned run report, then print the headline tallies it
// recorded — how many CG solves the run took, whether the solver ladder had
// to escalate, how training behaved, and where the wall time went.
//
// Validate the emitted file with:
//   tools/validate_run_report.py run_report.json
//
// Build & run:  ./examples/run_report_demo [--scale=0.03] [--report=PATH]
#include <iostream>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/obs.hpp"
#include "common/table.hpp"
#include "core/flow.hpp"

using namespace ppdl;

int main(int argc, char** argv) {
  CliParser cli("run_report_demo",
                "emit and summarize a ppdl.run_report JSON document");
  cli.add_flag("scale", "grid scale vs the paper-size spec", "0.03");
  cli.add_flag("report", "where to write the run report", "run_report.json");
  cli.add_flag("preconditioner",
               "CG preconditioner: none|jacobi|ic0|ic0-level|chebyshev",
               "ic0");
  cli.add_switch("no-incremental",
                 "disable the incremental planner re-solve context");
  try {
    cli.parse(argc, argv);
  } catch (const CliError& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
  if (cli.help_requested()) {
    return 0;
  }

  core::FlowOptions options;
  options.benchmark.scale = cli.get_real("scale");
  options.run_report_path = cli.get("report");
  options.incremental = !cli.get_bool("no-incremental");
  try {
    options.preconditioner =
        linalg::parse_preconditioner(cli.get("preconditioner"));
  } catch (const ContractViolation& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }

  std::cout << "Running the instrumented flow on an ibmpg1 replica "
            << (obs::metrics_enabled() ? "(metrics on)"
                                       : "(PPDL_METRICS=off)")
            << "...\n";
  const core::FlowResult flow = core::run_flow("ibmpg1", options);

  // The report file holds everything; echo the highlights from the same
  // registry the report was built from.
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
  const auto counter = [&snap](const char* name) -> Index {
    const auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0 : it->second;
  };

  ConsoleTable t({"metric", "value"});
  t.add_row({"CG solves", std::to_string(counter("cg.solves"))});
  t.add_row({"CG iterations (total)",
             std::to_string(counter("cg.iterations"))});
  t.add_row({"solve ladder escalations",
             std::to_string(counter("solve.escalated"))});
  t.add_row({"planner iterations",
             std::to_string(counter("planner.iterations"))});
  t.add_row({"training epochs", std::to_string(counter("train.epochs"))});
  t.add_row({"training rollbacks",
             std::to_string(counter("train.rollbacks"))});
  t.add_row({"width r2 vs conventional",
             ConsoleTable::fmt(flow.width_r2, 3)});
  t.add_row({"flow speedup", ConsoleTable::fmt(flow.speedup(), 1) + "x"});
  t.print(std::cout);

  std::cout << "\nrun report written to " << cli.get("report")
            << " (schema ppdl.run_report v1)\n"
            << "validate with: tools/validate_run_report.py "
            << cli.get("report") << "\n";
  return 0;
}
