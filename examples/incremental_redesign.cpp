// Incremental redesign: the use case the paper recommends PowerPlanningDL
// for. A team iterates on a chip; every spin tweaks block currents a little.
// Train once on the signed-off design, then answer each "what does the grid
// look like for THIS spin?" with a prediction instead of a planner run.
//
// This example trains one model, then sweeps five design spins of increasing
// perturbation and reports prediction quality and time per spin.
#include <iostream>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/benchmarks.hpp"
#include "core/flow.hpp"
#include "core/ir_predictor.hpp"
#include "core/ppdl_model.hpp"
#include "grid/perturb.hpp"
#include "planner/conventional_planner.hpp"

using namespace ppdl;

int main(int argc, char** argv) {
  CliParser cli("incremental_redesign",
                "train once, predict many design spins");
  cli.add_flag("scale", "grid scale vs the paper-size spec", "0.04");
  cli.add_flag("spins", "number of design spins to simulate", "5");
  try {
    cli.parse(argc, argv);
  } catch (const CliError& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
  if (cli.help_requested()) {
    return 0;
  }

  // --- one-time setup: golden design + training -----------------------------
  core::BenchmarkOptions bopts;
  bopts.scale = cli.get_real("scale");
  grid::GeneratedBenchmark bench = core::make_benchmark("ibmpg2", bopts);
  const planner::PlannerOptions popts =
      core::planner_options_for(bench.spec, 40);

  std::cout << "planning the golden design (" << bench.grid.node_count()
            << " nodes)...\n";
  grid::PowerGrid golden = bench.grid;
  const planner::PlannerResult planned =
      planner::run_conventional_planner(golden, popts);
  std::cout << "golden: " << (planned.converged ? "converged" : "STUCK")
            << " in " << planned.iterations << " iterations, worst IR "
            << ConsoleTable::fmt(planned.final_analysis.worst_ir_drop * 1e3, 1)
            << " mV\n";

  std::cout << "training the width model on the golden design...\n";
  core::PowerPlanningDL model;
  const core::TrainReport report = model.fit(golden);
  std::cout << "trained in " << ConsoleTable::fmt(report.train_seconds, 1)
            << " s (offline, once)\n\n";

  core::KirchhoffIrPredictor ir;
  ir.calibrate(golden, planned.final_analysis.node_ir_drop);

  // --- per-spin predictions ---------------------------------------------------
  const Index spins = cli.get_int("spins");
  ConsoleTable t({"spin", "gamma", "predict time (s)", "width r2",
                  "predicted worst IR (mV)", "verified worst IR (mV)",
                  "planner redesign (s)"});
  for (Index spin = 1; spin <= spins; ++spin) {
    const Real gamma = 0.05 + 0.05 * static_cast<Real>(spin - 1);
    grid::PowerGrid next = grid::perturbed_copy(
        golden, grid::PerturbationKind::kBoth, gamma,
        static_cast<U64>(1000 + spin), bench.spec.ir_limit_mv * 1e-3);

    // DL path: widths + IR, no solver.
    const Timer predict_timer;
    const core::WidthPrediction widths = model.predict(next);
    core::PowerPlanningDL::apply_widths(next, widths);
    const core::IrPrediction drop = ir.predict(next);
    const Real predict_seconds = predict_timer.seconds();

    // Reference: what the conventional flow would have done.
    grid::PowerGrid reference = next;
    reference.reset_wire_widths();
    const Timer planner_timer;
    planner::run_conventional_planner(reference, popts);
    const Real planner_seconds = planner_timer.seconds();

    std::vector<Real> truth;
    std::vector<Real> pred;
    std::vector<Real> by_branch(
        static_cast<std::size_t>(next.branch_count()), 0.0);
    for (std::size_t i = 0; i < widths.branch.size(); ++i) {
      by_branch[static_cast<std::size_t>(widths.branch[i])] =
          widths.predicted[i];
    }
    for (Index b = 0; b < reference.branch_count(); ++b) {
      if (reference.branch(b).kind == grid::BranchKind::kWire) {
        truth.push_back(reference.branch(b).width);
        pred.push_back(by_branch[static_cast<std::size_t>(b)]);
      }
    }

    // Verification solve of the DL-designed grid (not part of the DL time;
    // shown to make the prediction's honesty visible).
    const analysis::IrAnalysisResult verified = analysis::analyze_ir_drop(next);

    t.add_row({std::to_string(spin),
               ConsoleTable::fmt(gamma * 100, 0) + "%",
               ConsoleTable::fmt(predict_seconds, 4),
               ConsoleTable::fmt(r2_score(truth, pred), 3),
               ConsoleTable::fmt(drop.worst_ir_drop * 1e3, 1),
               ConsoleTable::fmt(verified.worst_ir_drop * 1e3, 1),
               ConsoleTable::fmt(planner_seconds, 4)});
  }
  t.print(std::cout);
  std::cout << "\nTakeaway: prediction time is flat per spin while accuracy "
               "degrades gracefully with spin size — use DL for small spins, "
               "re-plan when the design moves far.\n";
  return 0;
}
