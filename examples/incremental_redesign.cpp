// Incremental redesign: the use case the paper recommends PowerPlanningDL
// for. A team iterates on a chip; every spin tweaks block currents a little.
// Train once on the signed-off design, then answer each "what does the grid
// look like for THIS spin?" with a prediction instead of a planner run.
//
// This example trains one model, then sweeps five design spins of increasing
// perturbation and reports prediction quality and time per spin.
//
// The one-time setup is durable: each offline phase (golden plan, trained
// model) is checkpointed through the crash-safe artifact container. Kill the
// process at any point — Ctrl-C, a crash, an expired --deadline — and the
// next run resumes from the last completed phase instead of re-planning.
// Try it:
//
//   ./incremental_redesign --deadline 2      # budget expires mid-plan
//   ./incremental_redesign                   # resumes, finishes the plan
//   ./incremental_redesign                   # instant setup: all restored
//   ./incremental_redesign --fresh           # ignore the checkpoint
#include <iostream>
#include <sstream>

#include "common/artifact_io.hpp"
#include "common/cli.hpp"
#include "common/deadline.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/benchmarks.hpp"
#include "core/flow.hpp"
#include "core/ir_predictor.hpp"
#include "core/ppdl_model.hpp"
#include "grid/perturb.hpp"
#include "nn/model_io.hpp"
#include "planner/conventional_planner.hpp"

using namespace ppdl;

namespace {

/// Loads the checkpoint if it exists and matches this run's grid; a damaged
/// or mismatched file is reported and discarded, never trusted.
bool try_resume(const std::string& path, const grid::PowerGrid& pg,
                core::FlowCheckpoint& ckpt) {
  if (!artifact_file_ok(path, "flow-ckpt")) {
    return false;
  }
  try {
    core::FlowCheckpoint loaded = core::load_flow_checkpoint(path);
    if (loaded.benchmark_name != pg.name() ||
        static_cast<Index>(loaded.golden_widths.size()) !=
            pg.branch_count()) {
      std::cout << "checkpoint is for a different design — starting fresh\n";
      return false;
    }
    ckpt = std::move(loaded);
    return ckpt.completed >= core::FlowPhase::kGoldenDesign;
  } catch (const std::exception& e) {
    std::cout << "checkpoint discarded (" << e.what() << ")\n";
    return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("incremental_redesign",
                "train once, predict many design spins");
  cli.add_flag("scale", "grid scale vs the paper-size spec", "0.04");
  cli.add_flag("spins", "number of design spins to simulate", "5");
  cli.add_flag("checkpoint", "offline-phase checkpoint file",
               "incremental_redesign.ckpt");
  cli.add_flag("deadline", "wall-clock budget in seconds (0 = unlimited)",
               "0");
  cli.add_switch("fresh", "ignore any existing checkpoint");
  try {
    cli.parse(argc, argv);
  } catch (const CliError& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
  if (cli.help_requested()) {
    return 0;
  }

  const std::string ckpt_path = cli.get("checkpoint");
  const Real budget = cli.get_real("deadline");
  const Deadline deadline =
      budget > 0.0 ? Deadline::after_seconds(budget) : Deadline::unlimited();

  // --- one-time setup: golden design + training, checkpointed ---------------
  core::BenchmarkOptions bopts;
  bopts.scale = cli.get_real("scale");
  grid::GeneratedBenchmark bench = core::make_benchmark("ibmpg2", bopts);
  planner::PlannerOptions popts = core::planner_options_for(bench.spec, 40);
  popts.deadline = deadline;

  core::FlowCheckpoint ckpt;
  const bool resumed =
      !cli.get_bool("fresh") && try_resume(ckpt_path, bench.grid, ckpt);

  grid::PowerGrid golden = bench.grid;
  std::vector<Real> golden_drops;
  if (resumed) {
    for (Index b = 0; b < golden.branch_count(); ++b) {
      if (golden.branch(b).kind == grid::BranchKind::kWire) {
        golden.set_wire_width(b,
                              ckpt.golden_widths[static_cast<std::size_t>(b)]);
      }
    }
    golden_drops = ckpt.golden_node_ir_drop;
    std::cout << "golden design restored from " << ckpt_path << " ("
              << ckpt.golden_iterations << " planner iterations skipped, "
              << ConsoleTable::fmt(ckpt.golden_planner_seconds, 1)
              << " s saved)\n";
  } else {
    std::cout << "planning the golden design (" << bench.grid.node_count()
              << " nodes)...\n";
    const planner::PlannerResult planned =
        planner::run_conventional_planner(golden, popts);
    if (planned.timed_out) {
      std::cout << "deadline expired after " << planned.iterations
                << " planner iterations — rerun to resume from here\n";
      return 0;  // nothing durable yet: the golden phase never finished
    }
    std::cout << "golden: " << (planned.converged ? "converged" : "STUCK")
              << " in " << planned.iterations << " iterations, worst IR "
              << ConsoleTable::fmt(
                     planned.final_analysis.worst_ir_drop * 1e3, 1)
              << " mV\n";
    golden_drops = planned.final_analysis.node_ir_drop;

    ckpt = core::FlowCheckpoint{};
    ckpt.benchmark_name = golden.name();
    ckpt.completed = core::FlowPhase::kGoldenDesign;
    ckpt.golden_widths.assign(
        static_cast<std::size_t>(golden.branch_count()), 0.0);
    for (Index b = 0; b < golden.branch_count(); ++b) {
      if (golden.branch(b).kind == grid::BranchKind::kWire) {
        ckpt.golden_widths[static_cast<std::size_t>(b)] =
            golden.branch(b).width;
      }
    }
    ckpt.golden_node_ir_drop = golden_drops;
    ckpt.golden_iterations = planned.iterations;
    ckpt.golden_planner_seconds = planned.total_seconds;
    ckpt.golden_planner_converged = planned.converged;
    ckpt.golden_converged = planned.converged && !planned.solver_failed;
    core::save_flow_checkpoint(ckpt, ckpt_path);
    std::cout << "golden design checkpointed to " << ckpt_path
              << " — kill and rerun to resume from here\n";
  }

  core::PowerPlanningDL model;
  if (ckpt.completed >= core::FlowPhase::kTraining && ckpt.model_trained) {
    std::istringstream blob(ckpt.model_blob);
    model = core::PowerPlanningDL::load(blob);
    std::cout << "trained model restored from checkpoint ("
              << ConsoleTable::fmt(ckpt.train_seconds, 1) << " s saved)\n\n";
  } else {
    std::cout << "training the width model on the golden design...\n";
    core::PpdlModelConfig mcfg;
    mcfg.train.deadline = deadline;
    model = core::PowerPlanningDL(mcfg);
    const core::TrainReport report = model.fit(golden);
    for (const core::LayerFit& fit : report.layers) {
      if (fit.history.timed_out) {
        std::cout << "deadline expired mid-training — rerun to retrain with "
                     "the golden plan already checkpointed\n";
        return 0;
      }
    }
    std::cout << "trained in " << ConsoleTable::fmt(report.train_seconds, 1)
              << " s (offline, once)\n\n";

    ckpt.completed = core::FlowPhase::kTraining;
    ckpt.model_trained = true;
    std::ostringstream blob;
    model.save(blob);
    ckpt.model_blob = blob.str();
    ckpt.train_seconds = report.train_seconds;
    core::save_flow_checkpoint(ckpt, ckpt_path);
  }

  core::KirchhoffIrPredictor ir;
  ir.calibrate(golden, golden_drops);

  // --- per-spin predictions ---------------------------------------------------
  const Index spins = cli.get_int("spins");
  ConsoleTable t({"spin", "gamma", "predict time (s)", "width r2",
                  "predicted worst IR (mV)", "verified worst IR (mV)",
                  "planner redesign (s)"});
  for (Index spin = 1; spin <= spins; ++spin) {
    const Real gamma = 0.05 + 0.05 * static_cast<Real>(spin - 1);
    grid::PowerGrid next = grid::perturbed_copy(
        golden, grid::PerturbationKind::kBoth, gamma,
        static_cast<U64>(1000 + spin), bench.spec.ir_limit_mv * 1e-3);

    // DL path: widths + IR, no solver.
    const Timer predict_timer;
    const core::WidthPrediction widths = model.predict(next);
    core::PowerPlanningDL::apply_widths(next, widths);
    const core::IrPrediction drop = ir.predict(next);
    const Real predict_seconds = predict_timer.seconds();

    // Reference: what the conventional flow would have done.
    grid::PowerGrid reference = next;
    reference.reset_wire_widths();
    const Timer planner_timer;
    planner::run_conventional_planner(reference, popts);
    const Real planner_seconds = planner_timer.seconds();

    std::vector<Real> truth;
    std::vector<Real> pred;
    std::vector<Real> by_branch(
        static_cast<std::size_t>(next.branch_count()), 0.0);
    for (std::size_t i = 0; i < widths.branch.size(); ++i) {
      by_branch[static_cast<std::size_t>(widths.branch[i])] =
          widths.predicted[i];
    }
    for (Index b = 0; b < reference.branch_count(); ++b) {
      if (reference.branch(b).kind == grid::BranchKind::kWire) {
        truth.push_back(reference.branch(b).width);
        pred.push_back(by_branch[static_cast<std::size_t>(b)]);
      }
    }

    // Verification solve of the DL-designed grid (not part of the DL time;
    // shown to make the prediction's honesty visible).
    const analysis::IrAnalysisResult verified = analysis::analyze_ir_drop(next);

    t.add_row({std::to_string(spin),
               ConsoleTable::fmt(gamma * 100, 0) + "%",
               ConsoleTable::fmt(predict_seconds, 4),
               ConsoleTable::fmt(r2_score(truth, pred), 3),
               ConsoleTable::fmt(drop.worst_ir_drop * 1e3, 1),
               ConsoleTable::fmt(verified.worst_ir_drop * 1e3, 1),
               ConsoleTable::fmt(planner_seconds, 4)});
  }
  t.print(std::cout);
  std::cout << "\nTakeaway: prediction time is flat per spin while accuracy "
               "degrades gracefully with spin size — use DL for small spins, "
               "re-plan when the design moves far.\n";
  return 0;
}
