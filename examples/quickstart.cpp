// Quickstart: the whole PowerPlanningDL story in one small program.
//
//   1. Generate an IBM-PG-style benchmark grid (ibmpg1 replica).
//   2. Run the conventional planner once to get a golden design
//      ("historical data").
//   3. Train the DL width predictor and calibrate the fast IR predictor.
//   4. Perturb the specification by γ = 10% (a new, similar design).
//   5. Predict the new design's widths and IR drop — no solver in the loop —
//      and compare against a conventional redesign.
//
// Build & run:  ./examples/quickstart [--scale=0.05]
#include <iostream>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/flow.hpp"

using namespace ppdl;

int main(int argc, char** argv) {
  CliParser cli("quickstart", "end-to-end PowerPlanningDL walkthrough");
  cli.add_flag("scale", "grid scale vs the paper-size spec", "0.05");
  cli.add_flag("gamma", "perturbation size (fraction)", "0.10");
  cli.add_flag("preconditioner",
               "CG preconditioner: none|jacobi|ic0|ic0-level|chebyshev",
               "ic0");
  cli.add_switch("no-incremental",
                 "disable the incremental planner re-solve context");
  try {
    cli.parse(argc, argv);
  } catch (const CliError& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
  if (cli.help_requested()) {
    return 0;
  }

  core::FlowOptions options;
  options.benchmark.scale = cli.get_real("scale");
  options.gamma = cli.get_real("gamma");
  options.incremental = !cli.get_bool("no-incremental");
  try {
    options.preconditioner =
        linalg::parse_preconditioner(cli.get("preconditioner"));
  } catch (const ContractViolation& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }

  std::cout << "Running the PowerPlanningDL flow on an ibmpg1 replica...\n";
  const core::FlowResult flow = core::run_flow("ibmpg1", options);

  std::cout << "\ngrid: " << flow.nodes << " nodes, " << flow.interconnects
            << " PG interconnects\n";
  std::cout << "golden design: "
            << (flow.golden_planner.converged ? "converged" : "STUCK")
            << " after " << flow.golden_planner.iterations
            << " planner iterations\n";
  std::cout << "model training: "
            << ConsoleTable::fmt(flow.training.train_seconds, 2)
            << " s offline across " << flow.training.layers.size()
            << " layer sub-models\n\n";

  ConsoleTable t({"path", "time (s)", "worst IR drop (mV)"});
  t.add_row({"conventional redesign (1 design iteration)",
             ConsoleTable::fmt(flow.conventional_seconds, 4),
             ConsoleTable::fmt(flow.worst_ir_conventional * 1e3, 1)});
  t.add_row({"PowerPlanningDL (width + IR prediction)",
             ConsoleTable::fmt(flow.dl_seconds, 4),
             ConsoleTable::fmt(flow.worst_ir_dl * 1e3, 1)});
  t.print(std::cout);

  std::cout << "\nwidth prediction: r2 = " << ConsoleTable::fmt(flow.width_r2, 3)
            << ", MSE = " << ConsoleTable::fmt(flow.width_mse, 4)
            << " um^2 vs the conventional redesign\n";
  std::cout << "speedup: " << ConsoleTable::fmt(flow.speedup(), 2)
            << "x (single design iteration), "
            << ConsoleTable::fmt(flow.full_speedup(), 2)
            << "x (full redesign loop)\n";
  return 0;
}
