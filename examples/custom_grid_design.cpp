// Custom grid design: build a power grid for YOUR floorplan with the public
// API — no benchmark replicas involved.
//
//   1. Describe a die and functional blocks with switching currents.
//   2. Build a three-layer stripe grid over it by hand.
//   3. Size it with the conventional planner against IR/EM margins.
//   4. Verify with the sign-off report, and export the design as a SPICE
//      netlist for any external power-grid tool.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <vector>

#include "analysis/dual_rail.hpp"
#include "analysis/ir_map.hpp"
#include "analysis/ir_solver.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "grid/floorplan.hpp"
#include "grid/netlist.hpp"
#include "grid/power_grid.hpp"
#include "planner/conventional_planner.hpp"
#include "planner/sign_off.hpp"

using namespace ppdl;

int main(int argc, char** argv) {
  CliParser cli("custom_grid_design", "plan a power grid for a custom SoC");
  cli.add_flag("out", "netlist output path", "custom_grid.spice");
  try {
    cli.parse(argc, argv);
  } catch (const CliError& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
  if (cli.help_requested()) {
    return 0;
  }

  // --- 1. a 2×2 mm die with four blocks --------------------------------------
  const grid::Rect die{0.0, 0.0, 2000.0, 2000.0};
  grid::Floorplan floorplan(die);
  floorplan.add_block({"cpu", grid::Rect{100, 1100, 900, 1900}, 0.9});
  floorplan.add_block({"gpu", grid::Rect{1100, 1100, 1900, 1900}, 1.2});
  floorplan.add_block({"sram", grid::Rect{100, 100, 900, 900}, 0.3});
  floorplan.add_block({"noc", grid::Rect{1100, 100, 1900, 900}, 0.5});
  std::cout << "floorplan: " << floorplan.block_count() << " blocks, "
            << floorplan.total_current() << " A total switching current\n";

  // --- 2. a 3-layer stripe grid ------------------------------------------------
  grid::PowerGrid pg;
  pg.set_name("custom_soc");
  pg.set_vdd(0.9);
  pg.set_die(die);
  const Index m1 = pg.add_layer({"M1", true, 0.10, 0.8});
  const Index m4 = pg.add_layer({"M4", false, 0.05, 1.6});
  const Index m7 = pg.add_layer({"M7", true, 0.02, 5.0});

  constexpr Index kM1 = 40;
  constexpr Index kM4 = 40;
  constexpr Index kM7 = 6;
  std::vector<std::vector<Index>> n1(kM1, std::vector<Index>(kM4));
  std::vector<std::vector<Index>> n7(kM7, std::vector<Index>(kM4));
  const auto coord = [&](Index i, Index count) {
    return die.x1 * (static_cast<Real>(i) + 0.5) / static_cast<Real>(count);
  };
  const auto at = [](std::vector<std::vector<Index>>& grid_ids, Index r,
                     Index c) -> Index& {
    return grid_ids[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)];
  };
  for (Index i = 0; i < kM1; ++i) {
    for (Index j = 0; j < kM4; ++j) {
      at(n1, i, j) = pg.add_node({coord(j, kM4), coord(i, kM1)}, m1);
    }
  }
  for (Index k = 0; k < kM7; ++k) {
    for (Index j = 0; j < kM4; ++j) {
      at(n7, k, j) = pg.add_node({coord(j, kM4), coord(k, kM7)}, m7);
    }
  }
  const Real seg_x = die.width() / static_cast<Real>(kM4);
  for (Index i = 0; i < kM1; ++i) {
    for (Index j = 0; j + 1 < kM4; ++j) {
      pg.add_wire(at(n1, i, j), at(n1, i, j + 1), m1, seg_x, 0.8);
    }
  }
  for (Index k = 0; k < kM7; ++k) {
    for (Index j = 0; j + 1 < kM4; ++j) {
      pg.add_wire(at(n7, k, j), at(n7, k, j + 1), m7, seg_x, 5.0);
    }
  }
  // M4 columns stitch M1 rows to M7 rows: one M4 node per crossing, sorted
  // along the column, consecutive nodes joined by wires.
  for (Index j = 0; j < kM4; ++j) {
    struct Crossing {
      Real y;
      Index target;  // M1 or M7 node to via into
      Index via_layer;
    };
    std::vector<Crossing> crossings;
    crossings.reserve(static_cast<std::size_t>(kM1 + kM7));
    for (Index i = 0; i < kM1; ++i) {
      crossings.push_back({coord(i, kM1), at(n1, i, j), m4});
    }
    for (Index k = 0; k < kM7; ++k) {
      crossings.push_back({coord(k, kM7), at(n7, k, j), m7});
    }
    std::sort(crossings.begin(), crossings.end(),
              [](const Crossing& a, const Crossing& b) { return a.y < b.y; });
    Index prev = -1;
    Real prev_y = 0.0;
    for (const Crossing& c : crossings) {
      const Index v = pg.add_node({coord(j, kM4), c.y}, m4);
      pg.add_via(c.target, v, c.via_layer, 0.4);
      if (prev >= 0 && c.y > prev_y) {
        pg.add_wire(prev, v, m4, c.y - prev_y, 1.6);
      }
      prev = v;
      prev_y = c.y;
    }
  }
  // Pads on every 4th M7 crossing; loads from the floorplan onto M1.
  for (Index k = 0; k < kM7; ++k) {
    for (Index j = 0; j < kM4; j += 4) {
      pg.add_pad(at(n7, k, j), pg.vdd());
    }
  }
  const Real cell_area = seg_x * (die.height() / static_cast<Real>(kM1));
  for (Index i = 0; i < kM1; ++i) {
    for (Index j = 0; j < kM4; ++j) {
      const grid::Point p{coord(j, kM4), coord(i, kM1)};
      const Real amps = floorplan.current_density_at(p) * cell_area;
      if (amps > 0.0) {
        pg.add_load(at(n1, i, j), amps);
      }
    }
  }
  pg.validate();
  std::cout << "grid: " << pg.node_count() << " nodes, " << pg.wire_count()
            << " wires, " << pg.pad_count() << " pads, " << pg.load_count()
            << " loads\n";

  // --- 3. plan against margins -------------------------------------------------
  planner::PlannerOptions opts;
  opts.update.ir_limit = 0.05;  // 50 mV on a 0.9 V rail
  opts.update.jmax = 2.0;       // A/µm
  const planner::PlannerResult planned =
      planner::run_conventional_planner(pg, opts);
  std::cout << "\nplanner: " << (planned.converged ? "converged" : "STUCK")
            << " in " << planned.iterations << " iterations\n";
  for (const planner::IterationTrace& it : planned.trace) {
    std::cout << "  iter " << it.iteration << ": worst IR "
              << ConsoleTable::fmt(it.worst_ir_drop * 1e3, 1) << " mV, "
              << it.wires_widened << " wires widened\n";
  }

  // --- 4. verify and export -----------------------------------------------------
  planner::SignOffOptions sopts;
  sopts.ir_limit = opts.update.ir_limit;
  sopts.jmax = opts.update.jmax;
  const planner::SignOffReport report = planner::run_sign_off(pg, sopts);
  std::cout << "\n" << report.render();

  const analysis::IrAnalysisResult final_ir = analysis::analyze_ir_drop(pg);
  const analysis::IrMap map =
      analysis::rasterize_ir_map(pg, final_ir.node_ir_drop, 40, 40);
  std::cout << "\nIR-drop map of the signed-off design:\n"
            << analysis::render_ascii(map, 40);

  // Dual-rail check: the cell-level noise budget includes ground bounce.
  const grid::PowerGrid gnd = analysis::make_ground_mirror(pg);
  const analysis::DualRailResult rails = analysis::analyze_dual_rail(pg, gnd);
  std::cout << "\ndual-rail supply noise (VDD droop + GND bounce): worst "
            << ConsoleTable::fmt(rails.worst_noise * 1e3, 1) << " mV ("
            << ConsoleTable::fmt(rails.vdd.worst_ir_drop * 1e3, 1)
            << " droop + "
            << ConsoleTable::fmt(rails.gnd.worst_ir_drop * 1e3, 1)
            << " bounce)\n";

  const std::string out = cli.get("out");
  grid::write_netlist_file(pg, out);
  std::cout << "netlist exported to " << out << "\n";
  return report.signed_off ? 0 : 2;
}
