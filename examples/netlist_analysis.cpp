// Netlist interoperability: analyze and plan a power grid that arrives as a
// SPICE netlist — the format the real IBM PG benchmarks are distributed in.
//
//   ./netlist_analysis --netlist path/to/ibmpg1.spice
//
// If no netlist is given, a synthetic one is generated and written first, so
// the example is self-contained. The flow is: parse → validate → static IR
// analysis → EM assessment → conventional planning → sign-off → export the
// sized design.
#include <iostream>

#include "analysis/em.hpp"
#include "analysis/ir_map.hpp"
#include "analysis/ir_solver.hpp"
#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/benchmarks.hpp"
#include "grid/netlist.hpp"
#include "planner/conventional_planner.hpp"
#include "planner/sign_off.hpp"

using namespace ppdl;

int main(int argc, char** argv) {
  CliParser cli("netlist_analysis", "analyze & plan a SPICE power-grid deck");
  cli.add_flag("netlist", "input netlist (empty = generate one)", "");
  cli.add_flag("ir-limit-mv", "IR-drop margin in millivolts", "40");
  cli.add_flag("out", "sized-design output netlist", "sized_grid.spice");
  try {
    cli.parse(argc, argv);
  } catch (const CliError& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
  if (cli.help_requested()) {
    return 0;
  }

  std::string path = cli.get("netlist");
  if (path.empty()) {
    path = "generated_grid.spice";
    core::BenchmarkOptions opts;
    opts.scale = 0.02;
    const grid::GeneratedBenchmark bench = core::make_benchmark("ibmpg2", opts);
    grid::write_netlist_file(bench.grid, path);
    std::cout << "no netlist given — generated " << path << " ("
              << bench.grid.node_count() << " nodes)\n";
  }

  grid::PowerGrid pg = grid::parse_netlist_file(path);
  pg.validate();
  std::cout << "parsed " << path << ": " << pg.node_count() << " nodes, "
            << pg.branch_count() << " resistors, " << pg.pad_count()
            << " supplies, " << pg.load_count() << " loads, Vdd "
            << pg.vdd() << " V\n\n";

  // --- static analysis ---------------------------------------------------------
  const analysis::IrAnalysisResult ir = analysis::analyze_ir_drop(pg);
  const Summary drops = summarize(ir.node_ir_drop);
  ConsoleTable t({"metric", "value"});
  t.add_row({"worst IR drop", ConsoleTable::fmt(ir.worst_ir_drop * 1e3, 2) + " mV"});
  t.add_row({"median IR drop", ConsoleTable::fmt(drops.p50 * 1e3, 2) + " mV"});
  t.add_row({"p95 IR drop", ConsoleTable::fmt(drops.p95 * 1e3, 2) + " mV"});
  t.add_row({"worst current density",
             ConsoleTable::fmt(ir.worst_density, 4) + " A/um"});
  t.add_row({"CG iterations", std::to_string(ir.cg_iterations)});
  t.add_row({"solve time", ConsoleTable::fmt(ir.solve_seconds * 1e3, 1) + " ms"});
  t.print(std::cout);

  const analysis::EmMttfReport mttf = analysis::em_mttf_report(pg, ir);
  std::cout << "EM-limiting wire MTTF (Black's equation): "
            << ConsoleTable::fmt(mttf.min_mttf_hours, 0) << " hours\n\n";

  // --- plan against the requested margin ----------------------------------------
  planner::PlannerOptions popts;
  popts.update.ir_limit = cli.get_real("ir-limit-mv") * 1e-3;
  popts.update.jmax = std::max(ir.worst_density * 0.7, 1e-9);
  std::cout << "planning to a " << cli.get_real("ir-limit-mv")
            << " mV margin...\n";
  const planner::PlannerResult planned =
      planner::run_conventional_planner(pg, popts);
  std::cout << "planner " << (planned.converged ? "converged" : "did NOT converge")
            << " in " << planned.iterations << " iterations ("
            << ConsoleTable::fmt(planned.total_seconds, 3) << " s)\n\n";

  planner::SignOffOptions sopts;
  sopts.ir_limit = popts.update.ir_limit;
  sopts.jmax = popts.update.jmax;
  std::cout << planner::run_sign_off(pg, sopts).render() << "\n";

  const std::string out = cli.get("out");
  grid::write_netlist_file(pg, out);
  std::cout << "sized design written to " << out << "\n";
  return planned.converged ? 0 : 2;
}
