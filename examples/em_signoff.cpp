// EM-aware sizing and sign-off: explores the reliability side of the
// framework. Sweeps the EM limit Jmax, re-plans the same grid for each
// setting, and reports the metal cost of reliability plus Black's-equation
// lifetime estimates — paper eq. (4) in action.
#include <iostream>

#include "analysis/em.hpp"
#include "analysis/ir_solver.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/benchmarks.hpp"
#include "core/flow.hpp"
#include "planner/conventional_planner.hpp"

using namespace ppdl;

namespace {

Real metal_area(const grid::PowerGrid& pg) {
  Real area = 0.0;
  for (Index b = 0; b < pg.branch_count(); ++b) {
    const grid::Branch& br = pg.branch(b);
    if (br.kind == grid::BranchKind::kWire) {
      area += br.length * br.width;
    }
  }
  return area;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("em_signoff", "EM-aware sizing: reliability vs metal cost");
  cli.add_flag("scale", "grid scale vs the paper-size spec", "0.03");
  try {
    cli.parse(argc, argv);
  } catch (const CliError& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
  if (cli.help_requested()) {
    return 0;
  }

  core::BenchmarkOptions bopts;
  bopts.scale = cli.get_real("scale");
  const grid::GeneratedBenchmark bench = core::make_benchmark("ibmpg1", bopts);
  std::cout << "ibmpg1 replica: " << bench.grid.node_count() << " nodes, "
            << "auto-calibrated Jmax = "
            << ConsoleTable::fmt(bench.spec.jmax, 4) << " A/um\n\n";

  ConsoleTable t({"Jmax (x auto)", "converged", "iterations",
                  "EM violations", "min MTTF (hours)",
                  "metal area (x1e6 um^2)"});
  for (const Real factor : {2.0, 1.0, 0.5, 0.25}) {
    grid::PowerGrid pg = bench.grid;
    planner::PlannerOptions opts = core::planner_options_for(bench.spec, 60);
    opts.update.jmax = bench.spec.jmax * factor;
    const planner::PlannerResult planned =
        planner::run_conventional_planner(pg, opts);

    const analysis::IrAnalysisResult ir = analysis::analyze_ir_drop(pg);
    const auto violations = analysis::check_em(pg, ir, opts.update.jmax);
    const analysis::EmMttfReport mttf = analysis::em_mttf_report(pg, ir);

    t.add_row({ConsoleTable::fmt(factor, 2),
               planned.converged ? "yes" : "NO",
               std::to_string(planned.iterations),
               std::to_string(violations.size()),
               ConsoleTable::fmt(mttf.min_mttf_hours, 0),
               ConsoleTable::fmt(metal_area(pg) / 1e6, 2)});
  }
  t.print(std::cout);
  std::cout << "\nTakeaway: tightening Jmax buys EM lifetime (higher MTTF) "
               "at the cost of routing metal — the reliability trade-off the "
               "planner automates.\n";
  return 0;
}
